"""repro.api: the one import an application needs.

The stack grew layer by layer (addresslib -> host -> pool -> service),
and each layer's submission entry point grew its own keyword set.  This
facade is the redesign that stops that: one
:class:`SubmitOptions` dataclass carries every piece of serving
metadata -- priority class, relative deadline, retry budget, tenant
label, placement hint, modeled arrival time -- and is accepted,
keyword-only, by all three submission APIs:

* ``EngineService.submit(call, options=...)``
* ``AddressLib.run_batch(calls, options=...)``
* ``AddressEngineDriver.submit(config, frame, options=...)``

Each layer reads the fields it understands and ignores the rest (a
driver has no priority queue; a library has no placement policy), so
one options object can ride a request all the way down.  The pre-pool
signatures still work but warn with :class:`DeprecationWarning`.

Typical serving setup::

    from repro.api import (EngineService, EnginePool, SubmitOptions,
                           Priority, AdmissionPolicy, BatchCall,
                           ServicePolicy, TenantPolicy)

    pool = EnginePool.of_engines(4)
    service = EngineService(pool=pool, policy=ServicePolicy(
        admission=AdmissionPolicy(0.050),
        tenants={"viewfinder": TenantPolicy(weight=2.0,
                                            p95_target_seconds=0.040)}))
    ticket = service.submit(call, options=SubmitOptions(
        priority=Priority.INTERACTIVE, deadline_seconds=0.030,
        tenant="viewfinder"))

Async serving (:mod:`repro.aio`) rides the same options object::

    async with AsyncEngineClient(service) as client:
        ticket = await client.submit(call, options)
        frame = await ticket
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from .addresslib.library import (AddressLib, BatchCall, CallLog,
                                 SoftwareBackend)
from .aio import AsyncEngineClient, AsyncTicket, CompletionStream
from .host.backend import EngineBackend
from .host.driver import AddressEngineDriver, FrameResidencyCache
from .host.scheduler import BatchReport, CallScheduler
from .pool import (EnginePool, EngineWorker, LeastLoadedPlacement,
                   PlacementPolicy, PoolReport, ResidencyAffinityPlacement,
                   RoundRobinPlacement, WaveDispatch)
from .service.admission import AdmissionController, AdmissionPolicy
from .service.engine_service import EngineService, ServiceReport
from .service.policy import ServicePolicy, TenantPolicy
from .service.request import (Priority, RejectReason, RequestState,
                              ServiceError, ServiceTicket)


@dataclass(frozen=True)
class SubmitOptions:
    """Everything a caller may say about one submission, in one place.

    All fields default to "no preference", so ``SubmitOptions()`` is
    the neutral submission every legacy default maps onto.  The object
    is frozen: build one per request (or share one across requests with
    identical metadata -- it carries no per-request state).
    """

    #: Priority class (drains strictly lower-value-first).
    priority: Priority = Priority.STANDARD
    #: Relative completion budget in modeled seconds; ``None``: none.
    deadline_seconds: Optional[float] = None
    #: Deadline-miss re-enqueues allowed before timing out.
    max_retries: int = 0
    #: Tenant label the per-layer books tally this work under.
    tenant: Optional[str] = None
    #: Preferred pool worker id.  A *hint*: the pool honours it while
    #: the board is alive, and falls back to the placement policy
    #: otherwise -- it never changes results, only routing.
    placement: Optional[int] = None
    #: Where the request sits on the modeled clock (open-loop traces);
    #: ``None`` means "now".  Never moves the clock backwards.
    arrival_seconds: Optional[float] = None
    #: Transport-sanitizer domains to arm while this work runs
    #: (``"transport"``, ``"residency"``, ``"pool"``, or ``"all"``);
    #: ``None`` leaves the sanitizer as configured (the
    #: ``REPRO_SANITIZE`` env var still applies).  Diagnostics land on
    #: the serving scheduler's ``sanitizer_findings``; results are
    #: never changed.
    sanitize: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if (self.deadline_seconds is not None
                and self.deadline_seconds < 0):
            raise ValueError(
                f"deadline_seconds must be >= 0, got "
                f"{self.deadline_seconds}")
        if self.sanitize is not None:
            domains = _normalize_sanitize(self.sanitize)
            object.__setattr__(self, "sanitize", domains)


def _normalize_sanitize(
        sanitize: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """Validate and canonicalise a sanitizer-domain spec.

    Accepts a single domain name or a sequence of them; defers to
    :func:`repro.analysis.sanitize.normalize_domains` (lazy import, so
    building options never touches host transport) for the actual
    vocabulary -- unknown domains raise :class:`ValueError`.
    """
    from .analysis.sanitize import normalize_domains
    if isinstance(sanitize, str):
        sanitize = (sanitize,)
    return normalize_domains(sanitize)


__all__ = [
    "AddressEngineDriver",
    "AddressLib",
    "AdmissionController",
    "AdmissionPolicy",
    "AsyncEngineClient",
    "AsyncTicket",
    "BatchCall",
    "BatchReport",
    "CallLog",
    "CallScheduler",
    "CompletionStream",
    "EngineBackend",
    "EnginePool",
    "EngineService",
    "EngineWorker",
    "FrameResidencyCache",
    "LeastLoadedPlacement",
    "PlacementPolicy",
    "PoolReport",
    "Priority",
    "RejectReason",
    "RequestState",
    "ResidencyAffinityPlacement",
    "RoundRobinPlacement",
    "ServiceError",
    "ServicePolicy",
    "ServiceReport",
    "ServiceTicket",
    "TenantPolicy",
    "SoftwareBackend",
    "SubmitOptions",
    "WaveDispatch",
]
