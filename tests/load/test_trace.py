"""Arrival-trace synthesis: determinism, round trip, re-timing.

A load result is only citable if its arrival process is replayable:
the same :class:`TraceSpec` must synthesize the identical trace on any
machine, the JSON form must round-trip bit-exactly, and ``scaled()``
must change offered load without changing the request sequence.
"""

import json

import pytest

from repro.load import ArrivalTrace, CallFactory, TenantSpec, TraceSpec
from repro.service import Priority


def _spec(**overrides):
    base = dict(requests=500, rate_per_s=400.0, seed=0xBEEF)
    base.update(overrides)
    return TraceSpec(**base)


class TestSynthesis:
    def test_same_spec_same_trace(self):
        """Seeded synthesis is bit-deterministic, entry for entry."""
        first = ArrivalTrace.synthesize(_spec())
        second = ArrivalTrace.synthesize(_spec())
        assert first.entries == second.entries

    def test_seed_changes_trace(self):
        first = ArrivalTrace.synthesize(_spec())
        second = ArrivalTrace.synthesize(_spec(seed=0xBEE0))
        assert first.entries != second.entries

    def test_arrivals_are_sorted_and_sized(self):
        trace = ArrivalTrace.synthesize(_spec())
        assert len(trace) == 500
        arrivals = [e.arrival_seconds for e in trace.entries]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0.0

    def test_tenant_weights_shape_the_mix(self):
        """A weight-3 tenant sends more than a weight-1 tenant; every
        tenant appears (statistical, generous margins)."""
        spec = _spec(requests=3000, tenants=(
            TenantSpec("light", weight=1.0),
            TenantSpec("heavy", weight=3.0)))
        trace = ArrivalTrace.synthesize(spec)
        counts = [0, 0]
        for entry in trace.entries:
            counts[entry.tenant_index] += 1
        assert counts[0] > 0 and counts[1] > 0
        assert counts[1] > counts[0] * 1.5

    def test_burst_tenant_keeps_long_run_share(self):
        """Bursts modulate variance, not the offered total: the bursty
        tenant's share stays near its weight over a long trace."""
        spec = _spec(requests=20_000, rate_per_s=2000.0, tenants=(
            TenantSpec("smooth", weight=1.0),
            TenantSpec("bursty", weight=1.0, burst_factor=6.0,
                       burst_cycle_requests=32.0)))
        trace = ArrivalTrace.synthesize(spec)
        bursty = sum(1 for e in trace.entries if e.tenant_index == 1)
        assert 0.35 < bursty / len(trace) < 0.65

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec("bad", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec("bad", burst_factor=0.5)
        with pytest.raises(ValueError):
            _spec(requests=0)
        with pytest.raises(ValueError):
            _spec(intra_ops=("no_such_op",))
        with pytest.raises(ValueError):
            _spec(inter_ops=("also_missing",))


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        trace = ArrivalTrace.synthesize(_spec())
        payload = json.loads(json.dumps(trace.to_dict()))
        back = ArrivalTrace.from_dict(payload)
        assert back.entries == trace.entries
        assert back.rate_per_s == trace.rate_per_s
        assert [t.name for t in back.tenants] == [
            t.name for t in trace.tenants]
        assert [t.priority for t in back.tenants] == [
            t.priority for t in trace.tenants]

    def test_save_load_file(self, tmp_path):
        trace = ArrivalTrace.synthesize(_spec(requests=50))
        path = tmp_path / "trace.json"
        trace.save(str(path))
        back = ArrivalTrace.load(str(path))
        assert back.entries == trace.entries

    def test_version_gate(self):
        trace = ArrivalTrace.synthesize(_spec(requests=5))
        payload = trace.to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError):
            ArrivalTrace.from_dict(payload)
        with pytest.raises(ValueError):
            ArrivalTrace.from_dict({"kind": "something_else"})


class TestDerivation:
    def test_scaled_retimes_without_resequencing(self):
        trace = ArrivalTrace.synthesize(_spec())
        fast = trace.scaled(2.0)
        assert len(fast) == len(trace)
        assert fast.rate_per_s == pytest.approx(2 * trace.rate_per_s)
        for slow_e, fast_e in zip(trace.entries, fast.entries):
            assert fast_e.arrival_seconds == pytest.approx(
                slow_e.arrival_seconds / 2.0)
            assert (fast_e.tenant_index, fast_e.op, fast_e.seed_a,
                    fast_e.seed_b) == (slow_e.tenant_index, slow_e.op,
                                       slow_e.seed_a, slow_e.seed_b)
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_head_truncates(self):
        trace = ArrivalTrace.synthesize(_spec())
        head = trace.head(10)
        assert head.entries == trace.entries[:10]
        assert head.rate_per_s == trace.rate_per_s


class TestCallFactory:
    def test_frames_are_shared_identities(self):
        """Entries naming the same pool seed get the *same* Frame
        object -- residency caches need identity, not equality."""
        trace = ArrivalTrace.synthesize(_spec())
        factory = CallFactory(trace)
        by_seed = {}
        for entry in trace.entries:
            frame = factory.call(entry).frames[0]
            if entry.seed_a in by_seed:
                assert frame is by_seed[entry.seed_a]
            by_seed[entry.seed_a] = frame

    def test_calls_and_options_match_entries(self):
        spec = _spec(requests=200, inter_fraction=0.5,
                     tenants=(TenantSpec(
                         "vf", priority=Priority.INTERACTIVE,
                         deadline_seconds=0.05, max_retries=1),))
        trace = ArrivalTrace.synthesize(spec)
        factory = CallFactory(trace)
        saw_intra = saw_inter = saw_reduce = False
        for entry in trace.entries:
            call = factory.call(entry)
            options = factory.options(entry)
            assert call.op.name == entry.op
            assert options.tenant == "vf"
            assert options.priority is Priority.INTERACTIVE
            assert options.deadline_seconds == 0.05
            assert options.max_retries == 1
            assert options.arrival_seconds == entry.arrival_seconds
            if entry.seed_b is None:
                saw_intra = True
                assert len(call.frames) == 1
            else:
                saw_inter = True
                assert len(call.frames) == 2
                saw_reduce = saw_reduce or call.reduce_to_scalar
        assert saw_intra and saw_inter and saw_reduce
