"""Trace replay: serial/async agreement, accounting, memory bounds.

Below saturation the async facade paces the modeled clock exactly like
the blessed serial pump, so the two replays must cut *identical*
modeled books -- the strongest cheap check that no wall-clock behaviour
leaks into the modeled domain.  Accounting must balance (every offered
request lands in exactly one bucket) and account-then-release must keep
the service's ticket table empty.
"""

import json

import pytest

from repro.api import AdmissionPolicy, EnginePool, EngineService
from repro.load import (ArrivalTrace, TenantSpec, TraceSpec, replay_async,
                        replay_serial)
from repro.perf.report import REPORT_SCHEMA_KEYS


def _trace(requests=400, rate_per_s=300.0, seed=0x0AD5):
    return ArrivalTrace.synthesize(TraceSpec(
        requests=requests, rate_per_s=rate_per_s, seed=seed))


def _service(queue_depth=64, boards=2, policy=None):
    return EngineService(pool=EnginePool.of_engines(boards),
                        queue_depth=queue_depth, max_batch=8,
                        policy=policy)


def _modeled_books(report):
    """The machine-independent slice of a LoadReport payload."""
    payload = report.to_dict()
    for key in ("mode", "wall_latency", "backpressure_waits",
                "backpressure_wall_seconds", "wall_elapsed_seconds",
                "requests_per_wall_s", "service"):
        payload.pop(key)
    return payload


class TestAccounting:
    def test_books_balance(self):
        trace = _trace()
        report = replay_serial(trace, _service())
        assert report.accounted == len(trace)
        assert (report.completed + report.rejected + report.timed_out
                == len(trace))
        assert sum(b.submitted for b in report.tenants.values()) == (
            len(trace))
        assert report.modeled_latency.count == report.completed
        assert report.service is not None
        assert report.service.completed == report.completed

    def test_release_keeps_ticket_table_empty(self):
        trace = _trace(requests=200)
        service = _service()
        replay_serial(trace, service)
        assert len(service._tickets) == 0

        service = _service()
        replay_async(trace, service)
        assert len(service._tickets) == 0

    def test_report_follows_shared_schema(self):
        report = replay_serial(_trace(requests=50), _service())
        payload = report.to_dict()
        assert list(payload)[:len(REPORT_SCHEMA_KEYS)] == list(
            REPORT_SCHEMA_KEYS)
        assert payload["kind"] == "load"
        json.dumps(payload)  # all figures must serialize

    def test_empty_trace(self):
        trace = _trace(requests=5).head(0)
        serial = replay_serial(trace, _service())
        asynch = replay_async(trace, _service())
        assert serial.accounted == 0 and asynch.accounted == 0


class TestSerialAsyncAgreement:
    def test_identical_modeled_books_below_saturation(self):
        """Low offered load, deep queue: neither path sheds or waits,
        and arrival pacing makes their modeled books identical."""
        trace = _trace(requests=300, rate_per_s=150.0)
        serial = replay_serial(trace, _service(queue_depth=128))
        asynch = replay_async(trace, _service(queue_depth=128))
        assert serial.rejected == 0 and asynch.rejected == 0
        assert asynch.backpressure_waits == 0
        assert _modeled_books(serial) == _modeled_books(asynch)

    def test_async_replay_is_deterministic(self):
        """The same trace replayed twice through the event loop cuts
        identical modeled books, backpressure and all."""
        trace = _trace(requests=400, rate_per_s=2500.0)
        first = replay_async(trace, _service(queue_depth=16))
        second = replay_async(trace, _service(queue_depth=16))
        assert first.backpressure_waits == second.backpressure_waits
        assert _modeled_books(first) == _modeled_books(second)


class TestShedding:
    def test_admission_policy_sheds_at_overload(self):
        """With a deadline budget in force, a trace offered well past
        capacity rejects at admission instead of queueing forever."""
        trace = ArrivalTrace.synthesize(TraceSpec(
            requests=400, rate_per_s=20_000.0, seed=0x5ED,
            tenants=(TenantSpec("t", deadline_seconds=0.01),)))
        report = replay_serial(
            trace, _service(queue_depth=16,
                            policy=AdmissionPolicy(0.010)))
        assert report.rejected > 0
        assert report.accounted == len(trace)
        per_reason = report.rejected_by_reason
        assert all(reason in ("overload", "queue_full")
                   for reason in per_reason)

    def test_async_backpressure_trades_rejects_for_waits(self):
        """Same hot trace: the async path suspends producers instead
        of shedding on queue depth, so it completes strictly more."""
        trace = _trace(requests=300, rate_per_s=5000.0)
        serial = replay_serial(trace, _service(queue_depth=8))
        asynch = replay_async(trace, _service(queue_depth=8))
        assert serial.rejected > 0
        assert asynch.rejected == 0
        assert asynch.backpressure_waits > 0
        assert asynch.completed > serial.completed
