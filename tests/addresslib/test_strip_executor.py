"""Strip-vectorized counted executor: bit-exactness vs the scalar walk.

The contract under test is total: for every call the strip executor may
ever see, its outputs *and* its per-channel ``AccessCounter`` tallies
must be indistinguishable from the per-pixel serpentine walk -- the
Table 2 golden reference.  The harness drives the same randomized
corpus recipe as the scheduler/fast-path suites (seed family 0xFA57,
8 shards x 26 cases) through both executors under both scan orders,
plus hypothesis-driven degenerate geometries (1-pixel-wide,
1-pixel-tall, odd-dimension 4:2:0 planes) where clamping and line-turn
corrections are most fragile.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addresslib import (COUNTED_EXECUTOR_KINDS, ChannelSet,
                              CountedExecutor, INTER_OPS, INTRA_GRAD,
                              INTRA_OPS, IntraOp, ScanOrder,
                              SoftwareCostModel, StripCountedExecutor,
                              counted_executor, diff_access_snapshots)
from repro.image import (ALL_CHANNELS, ImageFormat, PlanarFrame420,
                         noise_frame)

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26


def _random_counted_case(rng):
    """One corpus case (the 0xFA57 recipe's geometry) as a counted call."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    channels = rng.choice([ChannelSet.Y, ChannelSet.YUV])
    if rng.random() < 0.5:
        return ("intra", rng.choice(_INTRA), frame_a, None, channels)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    return ("inter", rng.choice(_INTER), frame_a, frame_b, channels)


def _run_counted(executor, case):
    """Run one case on counted stores sharing a single counter."""
    kind, op, frame_a, frame_b, channels = case
    src = PlanarFrame420.from_frame(frame_a)
    dst = PlanarFrame420(frame_a.format, src.counter)
    if kind == "intra":
        executor.intra(op, src, dst, channels)
    else:
        src_b = PlanarFrame420.from_frame(frame_b, src.counter)
        executor.inter(op, src, src_b, dst, channels)
    return dst, src.counter.snapshot()


def _assert_case_equivalent(case, scan):
    scalar_out, scalar_counts = _run_counted(CountedExecutor(scan), case)
    strip_out, strip_counts = _run_counted(StripCountedExecutor(scan),
                                           case)
    for channel in ALL_CHANNELS:
        assert np.array_equal(strip_out.plane(channel),
                              scalar_out.plane(channel)), (
            f"{case[0]} {case[1].name} {scan} diverges on "
            f"{channel.name}")
    mismatches = diff_access_snapshots(scalar_counts, strip_counts)
    assert not mismatches, (
        f"{case[0]} {case[1].name} {scan} access counts: {mismatches}")


class TestCorpusEquivalence:
    """208-case corpus, both scan orders: outputs and tallies match."""

    @pytest.mark.parametrize("scan", list(ScanOrder),
                             ids=lambda scan: scan.value)
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_strip_matches_scalar_walk(self, shard, scan):
        rng = random.Random(0xFA57 + shard)
        for _ in range(CASES_PER_SHARD):
            _assert_case_equivalent(_random_counted_case(rng), scan)


# Degenerate geometries: single-pixel lines and odd 4:2:0 dimensions,
# where border clamping covers the whole window and the serpentine walk
# degenerates to turn steps only.
degenerate_dims = st.one_of(
    st.tuples(st.just(1), st.integers(1, 40)),        # 1-pixel-wide
    st.tuples(st.integers(1, 40), st.just(1)),        # 1-pixel-tall
    st.tuples(st.integers(1, 12).map(lambda n: 2 * n - 1),
              st.integers(1, 12).map(lambda n: 2 * n - 1)),  # odd 4:2:0
)
intra_ops = st.sampled_from(_INTRA)
inter_ops = st.sampled_from(_INTER)
scans = st.sampled_from(list(ScanOrder))
channel_sets = st.sampled_from([ChannelSet.Y, ChannelSet.YUV])


class TestDegenerateGeometries:
    @given(dims=degenerate_dims, op=intra_ops, scan=scans,
           channels=channel_sets, seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_intra_outputs_and_counts_match(self, dims, op, scan,
                                            channels, seed):
        width, height = dims
        fmt = ImageFormat(f"D{width}x{height}", width, height)
        frame = noise_frame(fmt, seed=seed)
        _assert_case_equivalent(("intra", op, frame, None, channels),
                                scan)

    @given(dims=degenerate_dims, op=inter_ops, scan=scans,
           channels=channel_sets, seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_inter_outputs_and_counts_match(self, dims, op, scan,
                                            channels, seed):
        width, height = dims
        fmt = ImageFormat(f"D{width}x{height}", width, height)
        frame_a = noise_frame(fmt, seed=seed)
        frame_b = noise_frame(fmt, seed=seed + 1)
        _assert_case_equivalent(("inter", op, frame_a, frame_b, channels),
                                scan)

    @given(dims=degenerate_dims, op=intra_ops, scan=scans,
           seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_cost_model_prediction_is_exact(self, dims, op, scan, seed):
        """``intra_counts_exact`` equals the measured snapshot of *both*
        executors, even where every window is fully clamped."""
        width, height = dims
        fmt = ImageFormat(f"D{width}x{height}", width, height)
        frame = noise_frame(fmt, seed=seed)
        expected = SoftwareCostModel().intra_counts_exact(
            op, fmt, ChannelSet.YUV, scan)
        for kind in COUNTED_EXECUTOR_KINDS:
            _, counts = _run_counted(
                counted_executor(kind, scan),
                ("intra", op, frame, None, ChannelSet.YUV))
            assert not diff_access_snapshots(expected, counts), kind


class TestStripGranularity:
    """Strip height must not change results or tallies."""

    @pytest.mark.parametrize("strip_lines", [1, 3, 16, 1000])
    def test_any_strip_height_is_bit_exact(self, strip_lines):
        fmt = ImageFormat("G23x33", 23, 33)
        frame = noise_frame(fmt, seed=7)
        for scan in ScanOrder:
            case = ("intra", INTRA_GRAD, frame, None, ChannelSet.YUV)
            scalar_out, scalar_counts = _run_counted(
                CountedExecutor(scan), case)
            strip_out, strip_counts = _run_counted(
                StripCountedExecutor(scan, strip_lines=strip_lines),
                case)
            assert np.array_equal(strip_out.plane(ALL_CHANNELS[0]),
                                  scalar_out.plane(ALL_CHANNELS[0]))
            assert not diff_access_snapshots(scalar_counts, strip_counts)

    def test_rejects_non_positive_strip_lines(self):
        with pytest.raises(ValueError):
            StripCountedExecutor(strip_lines=0)


class TestFactoryKnob:
    def test_kinds(self):
        assert isinstance(counted_executor("scalar"), CountedExecutor)
        assert isinstance(counted_executor("strip"), StripCountedExecutor)
        assert isinstance(counted_executor(), StripCountedExecutor)

    def test_scan_and_options_thread_through(self):
        strip = counted_executor("strip", ScanOrder.VERTICAL,
                                 strip_lines=4, validate=True)
        assert strip.scan is ScanOrder.VERTICAL
        assert strip.strip_lines == 4
        assert strip.validate is True
        scalar = counted_executor("scalar", ScanOrder.VERTICAL)
        assert scalar.scan is ScanOrder.VERTICAL

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            counted_executor("vector")


class TestValidateMode:
    """``validate=True`` shadow-runs the scalar walk and must catch both
    output and access-count divergence."""

    def _planar_pair(self, fmt, seed):
        frame = noise_frame(fmt, seed=seed)
        src = PlanarFrame420.from_frame(frame)
        dst = PlanarFrame420(fmt, src.counter)
        return src, dst

    def test_clean_call_passes(self):
        fmt = ImageFormat("V13x9", 13, 9)
        src, dst = self._planar_pair(fmt, seed=3)
        StripCountedExecutor(validate=True).intra(
            INTRA_GRAD, src, dst, ChannelSet.YUV)

    def test_output_divergence_raises(self):
        broken = IntraOp(
            name="intra_broken_vector",
            neighbourhood=INTRA_GRAD.neighbourhood,
            scalar=INTRA_GRAD.scalar,
            vector=lambda stack: (INTRA_GRAD.vector(stack) + 1)
            .astype(np.uint8),
            cost=INTRA_GRAD.cost)
        fmt = ImageFormat("V12x8", 12, 8)
        src, dst = self._planar_pair(fmt, seed=4)
        with pytest.raises(AssertionError, match="diverges"):
            StripCountedExecutor(validate=True).intra(broken, src, dst)

    def test_count_divergence_raises(self):
        class Misaccounting(StripCountedExecutor):
            def _intra_plane(self, op, frame, output, channel):
                super()._intra_plane(op, frame, output, channel)
                frame.counter.credit_reads(channel, 1)  # seeded bug

        fmt = ImageFormat("V12x8", 12, 8)
        src, dst = self._planar_pair(fmt, seed=5)
        with pytest.raises(AssertionError, match="access counts"):
            Misaccounting(validate=True).intra(INTRA_GRAD, src, dst)
