"""Named FIR kernel presets."""

import numpy as np
import pytest

from repro.addresslib import VectorExecutor
from repro.addresslib.kernels import (KERNEL_FACTORIES, emboss3_op,
                                      gaussian3_op, gaussian5_op,
                                      kernel_by_name, motion_blur5_op,
                                      sharpen3_op)
from repro.core import AddressEngine, intra_config
from repro.image import ImageFormat, Frame, noise_frame

FMT = ImageFormat("K32", 32, 32)


def flat(value=100):
    frame = Frame(FMT)
    frame.y[:] = value
    return frame


class TestNormalisation:
    @pytest.mark.parametrize("factory", [gaussian3_op, gaussian5_op],
                             ids=["gaussian3", "gaussian5"])
    def test_smoothers_preserve_flat_fields(self, factory):
        result = VectorExecutor.intra(factory(), flat(137))
        assert (result.y == 137).all()

    def test_sharpen_preserves_flat_fields(self):
        result = VectorExecutor.intra(sharpen3_op(), flat(64))
        assert (result.y == 64).all()

    def test_gaussian_reduces_noise_variance(self):
        frame = noise_frame(FMT, seed=71)
        g3 = VectorExecutor.intra(gaussian3_op(), frame)
        g5 = VectorExecutor.intra(gaussian5_op(), frame)
        assert g3.y.std() < frame.y.std()
        assert g5.y.std() < g3.y.std()   # wider kernel smooths more

    def test_sharpen_amplifies_edges(self):
        frame = Frame(FMT)
        frame.y[:, 16:] = 128
        sharpened = VectorExecutor.intra(sharpen3_op(), frame)
        assert sharpened.y[5, 16] > 128          # overshoot
        assert sharpened.y[5, 15] == 0           # undershoot clamps

    def test_motion_blur_is_horizontal_only(self):
        frame = Frame(FMT)
        frame.y[16, :] = 200                     # a horizontal line
        blurred = VectorExecutor.intra(motion_blur5_op(), frame)
        assert blurred.y[15, 16] == 0            # untouched vertically
        frame2 = Frame(FMT)
        frame2.y[:, 16] = 200                    # a vertical line
        blurred2 = VectorExecutor.intra(motion_blur5_op(), frame2)
        assert blurred2.y[16, 15] > 0            # smeared horizontally


class TestRegistry:
    def test_every_kernel_instantiates(self):
        for name in KERNEL_FACTORIES:
            op = kernel_by_name(name)
            assert op.name == f"kernel_{name}"

    def test_lookup_case_insensitive(self):
        assert kernel_by_name(" Gaussian3 ").name == "kernel_gaussian3"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            kernel_by_name("boxcar7")

    def test_lookup_is_memoized_identity(self):
        # Repeated lookups return the *same* instance: the registry is
        # the identity anchor the residency cache and the scheduler's
        # worker dispatch compare ops against.
        for name in KERNEL_FACTORIES:
            assert kernel_by_name(name) is kernel_by_name(name)
        assert (kernel_by_name("gaussian3")
                is kernel_by_name(" GAUSSIAN3 "))

    def test_factories_still_build_fresh_instances(self):
        # The direct factories stay un-memoized (callers may mutate or
        # wrap); only the by-name registry canonicalises.
        from repro.addresslib import gaussian3_op
        assert gaussian3_op() is not gaussian3_op()


class TestOnTheEngine:
    @pytest.mark.parametrize("name", sorted(KERNEL_FACTORIES))
    def test_cycle_model_matches_golden(self, name):
        op = kernel_by_name(name)
        frame = noise_frame(FMT, seed=72)
        config = intra_config(op, FMT)
        run = AddressEngine().run_call(config, frame)
        assert run.frame.equals(AddressEngine.run_functional(config,
                                                             frame))

    def test_emboss_runs(self):
        frame = noise_frame(FMT, seed=73)
        result = VectorExecutor.intra(emboss3_op(), frame)
        assert result.y.shape == frame.y.shape
