"""The AddressLib facade: dispatch, call logging, fallback routing."""

import numpy as np
import pytest

from repro.addresslib import (AddressLib, AddressingMode, Backend, CallLog,
                              CallRecord, ChannelSet, INTER_ABSDIFF,
                              INTRA_COPY, INTRA_GRAD, SoftwareBackend,
                              luma_delta_criterion)
from repro.image import Channel, ImageFormat, blob_frame, noise_frame

FMT = ImageFormat("T16L", 16, 16)


class TestCallLog:
    def test_mode_tallies(self):
        log = CallLog()
        log.append(CallRecord(AddressingMode.INTRA, "x", ChannelSet.Y,
                              "T", 1))
        log.append(CallRecord(AddressingMode.INTER, "y", ChannelSet.Y,
                              "T", 1))
        log.append(CallRecord(AddressingMode.INTRA, "z", ChannelSet.Y,
                              "T", 1))
        assert log.intra_calls == 2
        assert log.inter_calls == 1
        assert log.total_calls == 3

    def test_total_extra(self):
        log = CallLog()
        log.append(CallRecord(AddressingMode.INTRA, "x", ChannelSet.Y,
                              "T", 1, extra={"k": 2.0}))
        log.append(CallRecord(AddressingMode.INTRA, "x", ChannelSet.Y,
                              "T", 1))
        assert log.total_extra("k") == 2.0

    def test_clear(self):
        log = CallLog()
        log.append(CallRecord(AddressingMode.INTRA, "x", ChannelSet.Y,
                              "T", 1))
        log.clear()
        assert log.total_calls == 0


class TestDispatchAndLogging:
    def test_intra_call_logged_with_profile(self):
        lib = AddressLib()
        lib.intra(INTRA_GRAD, noise_frame(FMT, seed=1))
        record = lib.log.records[-1]
        assert record.mode is AddressingMode.INTRA
        assert record.op_name == "intra_grad"
        assert record.profile is not None
        assert record.profile.total_instructions > 0
        assert record.extra["width"] == FMT.width

    def test_inter_reduce_marks_op_name(self):
        lib = AddressLib()
        frame = noise_frame(FMT, seed=2)
        lib.inter_reduce(INTER_ABSDIFF, frame, frame)
        assert lib.log.records[-1].op_name.endswith("+reduce")
        assert lib.log.inter_calls == 1

    def test_segment_logged_as_segment_mode(self):
        lib = AddressLib()
        frame = blob_frame(FMT, [(8, 8)], radius=4)
        lib.segment(frame, [(8, 8)], luma_delta_criterion(8))
        record = lib.log.records[-1]
        assert record.mode is AddressingMode.SEGMENT
        assert record.pixels > 0

    def test_histogram_logged_as_segment_indexed(self):
        lib = AddressLib()
        hist = lib.histogram(noise_frame(FMT, seed=3), Channel.Y)
        assert hist.sum() == FMT.pixels
        assert lib.log.records[-1].mode is AddressingMode.SEGMENT_INDEXED

    def test_merged_profile_spans_calls(self):
        lib = AddressLib()
        frame = noise_frame(FMT, seed=4)
        lib.intra(INTRA_COPY, frame)
        lib.inter(INTER_ABSDIFF, frame, frame)
        merged = lib.log.merged_profile()
        assert merged.calls == 2


class _InterOnlyBackend(SoftwareBackend):
    """A backend that pretends to support only inter mode."""

    name = "inter_only"

    def supports(self, mode):
        return mode is AddressingMode.INTER


class TestFallbackRouting:
    def test_unsupported_mode_falls_back_to_software(self):
        lib = AddressLib(_InterOnlyBackend())
        frame = noise_frame(FMT, seed=5)
        result = lib.intra(INTRA_GRAD, frame)   # must not raise
        assert result.y.shape == frame.y.shape
        assert lib.log.intra_calls == 1

    def test_supported_mode_uses_backend(self):
        backend = _InterOnlyBackend()
        lib = AddressLib(backend)
        assert lib._dispatch(AddressingMode.INTER) is backend
        assert lib._dispatch(AddressingMode.INTRA) is not backend


class TestFunctionalResults:
    def test_intra_copy_identity_on_luma(self):
        lib = AddressLib()
        frame = noise_frame(FMT, seed=6)
        result = lib.intra(INTRA_COPY, frame)
        assert np.array_equal(result.y, frame.y)

    def test_inter_absdiff_self_is_zero(self):
        lib = AddressLib()
        frame = noise_frame(FMT, seed=7)
        result = lib.inter(INTER_ABSDIFF, frame, frame)
        assert int(result.y.sum()) == 0

    def test_yuv_channels_processed_independently(self):
        lib = AddressLib()
        a = noise_frame(FMT, seed=8)
        b = noise_frame(FMT, seed=9)
        y_only = lib.inter(INTER_ABSDIFF, a, b, ChannelSet.Y)
        yuv = lib.inter(INTER_ABSDIFF, a, b, ChannelSet.YUV)
        assert np.array_equal(y_only.y, yuv.y)
        assert np.array_equal(y_only.u, a.u)      # untouched channel
        assert not np.array_equal(yuv.u, a.u)
