"""Multi-call compositions of AddressLib sub-functions."""

import numpy as np
import pytest

from repro.addresslib import AddressLib
from repro.addresslib.compositions import (MotionMaskSettings, call_count_of,
                                           closing, motion_mask, opening,
                                           temporal_smooth, top_hat,
                                           unsharp_mask)
from repro.host import EngineBackend
from repro.image import ImageFormat, Frame, blob_frame, noise_frame

FMT = ImageFormat("COMP", 32, 32)


def speckled_frame():
    """A big blob plus isolated single-pixel speckles."""
    frame = blob_frame(FMT, [(16, 16)], radius=8, inside=200, outside=20)
    for x, y in ((2, 2), (29, 5), (5, 28)):
        frame.y[y, x] = 200
    return frame


class TestMorphology:
    def test_opening_removes_speckles_keeps_blob(self):
        lib = AddressLib()
        frame = speckled_frame()
        opened = opening(lib, frame)
        assert opened.y[2, 2] == 20          # speckle gone
        assert opened.y[16, 16] == 200       # blob survives
        assert lib.log.intra_calls == 2

    def test_closing_fills_small_holes(self):
        lib = AddressLib()
        frame = blob_frame(FMT, [(16, 16)], radius=8)
        frame.y[16, 16] = 30                 # a one-pixel hole
        closed = closing(lib, frame)
        assert closed.y[16, 16] == 200

    def test_opening_is_anti_extensive(self):
        """opening(f) <= f pointwise -- the defining inequality."""
        lib = AddressLib()
        frame = noise_frame(FMT, seed=4)
        opened = opening(lib, frame)
        assert (opened.y.astype(int) <= frame.y.astype(int)).all()

    def test_closing_is_extensive(self):
        lib = AddressLib()
        frame = noise_frame(FMT, seed=5)
        closed = closing(lib, frame)
        assert (closed.y.astype(int) >= frame.y.astype(int)).all()

    def test_opening_idempotent(self):
        lib = AddressLib()
        frame = noise_frame(FMT, seed=6)
        once = opening(lib, frame)
        twice = opening(lib, once)
        assert np.array_equal(once.y, twice.y)

    def test_top_hat_isolates_speckles(self):
        lib = AddressLib()
        frame = speckled_frame()
        hat = top_hat(lib, frame)
        assert hat.y[2, 2] == 180            # speckle contrast
        assert hat.y[16, 16] == 0            # blob interior removed
        assert lib.log.total_calls == call_count_of("top_hat")


class TestUnsharpAndTemporal:
    def test_unsharp_boosts_edges(self):
        lib = AddressLib()
        frame = Frame(FMT)
        frame.y[:, :16] = 60
        frame.y[:, 16:] = 160
        sharpened = unsharp_mask(lib, frame)
        # Bright side of the edge overshoots, flat areas are unchanged.
        assert sharpened.y[5, 16] > 160
        assert sharpened.y[5, 2] == 60

    def test_temporal_smooth_converges_to_static_scene(self):
        lib = AddressLib()
        static = noise_frame(FMT, seed=7)
        frames = [static.copy() for _ in range(5)]
        smoothed = temporal_smooth(lib, frames)
        assert np.array_equal(smoothed.y, static.y)
        assert lib.log.inter_calls == 4

    def test_temporal_smooth_empty_sequence(self):
        assert temporal_smooth(AddressLib(), []) is None

    def test_temporal_smooth_damps_transients(self):
        lib = AddressLib()
        background = Frame(FMT)
        background.y[:] = 100
        flash = Frame(FMT)
        flash.y[:] = 220
        result = temporal_smooth(
            lib, [background, background, flash, background])
        assert 100 <= result.y[0, 0] < 140   # flash damped


class TestMotionMask:
    def test_detects_moving_object(self):
        lib = AddressLib()
        background = Frame(FMT)
        background.y[:] = 50
        frame = blob_frame(FMT, [(20, 20)], radius=6, inside=220,
                           outside=50)
        mask = motion_mask(lib, frame, background)
        assert mask.y[20, 20] == 255
        assert mask.y[2, 2] == 0
        assert lib.log.total_calls == call_count_of("motion_mask")

    def test_despeckling_optional(self):
        lib = AddressLib()
        background = Frame(FMT)
        frame = Frame(FMT)
        motion_mask(lib, frame, background,
                    MotionMaskSettings(despeckle=None))
        assert lib.log.total_calls == 3

    def test_runs_identically_on_engine_backend(self):
        background = Frame(FMT)
        background.y[:] = 50
        frame = blob_frame(FMT, [(20, 20)], radius=6, inside=220,
                           outside=50)
        sw = motion_mask(AddressLib(), frame, background)
        hw = motion_mask(AddressLib(EngineBackend()), frame, background)
        assert sw.equals(hw)


class TestPlanning:
    def test_call_counts(self):
        assert call_count_of("opening") == 2
        assert call_count_of("motion_mask") == 5
        with pytest.raises(KeyError):
            call_count_of("nonsense")
