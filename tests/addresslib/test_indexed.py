"""Segment-indexed addressing: the counted side table."""

import pytest

from repro.addresslib import IndexedTable, OpProfile, SegmentStatistics


class TestIndexedTable:
    def test_read_write(self):
        table = IndexedTable(["a", "b"], size=4)
        table.write(2, "a", 7)
        assert table.read(2, "a") == 7
        assert table.read(2, "b") == 0

    def test_every_access_counted(self):
        table = IndexedTable(["a"], size=2)
        table.write(0, "a", 1)
        table.read(0, "a")
        table.increment(0, "a")
        assert table.reads == 2
        assert table.writes == 2
        assert table.accesses == 4

    def test_increment_returns_new_value(self):
        table = IndexedTable(["n"], size=1)
        assert table.increment(0, "n") == 1
        assert table.increment(0, "n", 5) == 6

    def test_bounds_and_fields_checked(self):
        table = IndexedTable(["a"], size=2)
        with pytest.raises(IndexError):
            table.read(2, "a")
        with pytest.raises(KeyError):
            table.read(0, "zzz")

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            IndexedTable([], size=4)
        with pytest.raises(ValueError):
            IndexedTable(["a"], size=0)
        with pytest.raises(ValueError):
            IndexedTable(["a", "a"], size=4)

    def test_profile_charged_per_access(self):
        profile = OpProfile()
        table = IndexedTable(["a"], size=2, profile=profile)
        table.write(0, "a", 3)
        table.read(0, "a")
        assert profile.counts["store"] == 1
        assert profile.counts["load"] == 1
        assert profile.counts["addr"] == 4  # 2 per access

    def test_row_snapshot_uncounted(self):
        table = IndexedTable(["a"], size=2)
        table.write(1, "a", 9)
        accesses = table.accesses
        assert table.row(1) == {"a": 9}
        assert table.accesses == accesses


class TestSegmentStatistics:
    def test_observe_accumulates(self):
        stats = SegmentStatistics(max_segments=4)
        stats.observe(1, x=3, y=4, luma=100)
        stats.observe(1, x=5, y=2, luma=200)
        assert stats.area(1) == 2
        assert stats.mean_luma(1) == pytest.approx(150.0)

    def test_bounding_box_grows(self):
        stats = SegmentStatistics(max_segments=2)
        stats.observe(0, 5, 5, 10)
        stats.observe(0, 2, 8, 10)
        stats.observe(0, 9, 1, 10)
        assert stats.bounding_box(0) == (2, 1, 9, 8)

    def test_empty_segment(self):
        stats = SegmentStatistics(max_segments=2)
        assert stats.bounding_box(1) is None
        assert stats.mean_luma(1) == 0.0

    def test_all_updates_go_through_counted_table(self):
        stats = SegmentStatistics(max_segments=2)
        stats.observe(0, 1, 1, 50)
        first = stats.table.accesses
        assert first > 0
        stats.observe(0, 1, 2, 60)
        assert stats.table.accesses > first
