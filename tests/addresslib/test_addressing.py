"""Addressing vocabulary: modes, neighbourhoods, scan orders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addresslib import (COLUMN_9, CON_0, CON_4, CON_8, CON_24,
                              MAX_NEIGHBOURHOOD_LINES, AddressingMode,
                              Neighbourhood, ScanOrder,
                              neighbour_positions, neighbourhood_by_name,
                              scan_positions, serpentine_positions)
from repro.image import ImageFormat

FMT = ImageFormat("T6x4", 6, 4)


class TestAddressingMode:
    def test_v1_engine_supports_inter_and_intra_only(self):
        """Section 3: the first version implements a subset -- the intra-
        and inter addressing modes."""
        assert AddressingMode.INTER.engine_supported_v1
        assert AddressingMode.INTRA.engine_supported_v1
        assert not AddressingMode.SEGMENT.engine_supported_v1
        assert not AddressingMode.SEGMENT_INDEXED.engine_supported_v1


class TestNeighbourhoodShapes:
    def test_con0_is_centre_only(self):
        assert CON_0.size == 1
        assert CON_0.offsets == ((0, 0),)

    def test_con8_is_3x3(self):
        assert CON_8.size == 9
        assert CON_8.line_span == 3
        assert CON_8.column_span == 3

    def test_con4_is_cross(self):
        assert CON_4.size == 5
        assert (1, 1) not in CON_4.offsets

    def test_con24_is_5x5(self):
        assert CON_24.size == 25

    def test_column9_is_figure4_worst_case(self):
        """Figure 4: maximum extent perpendicular to the scan."""
        assert COLUMN_9.line_span == MAX_NEIGHBOURHOOD_LINES
        assert COLUMN_9.column_span == 1
        assert COLUMN_9.span_perpendicular_to(ScanOrder.HORIZONTAL) == 9
        assert COLUMN_9.span_perpendicular_to(ScanOrder.VERTICAL) == 1

    def test_nine_line_limit_enforced(self):
        """'The maximum range of input data required to process one pixel
        is nine lines' -- larger shapes are rejected."""
        offsets = tuple((0, dy) for dy in range(-5, 5))  # 10 lines
        with pytest.raises(ValueError):
            Neighbourhood("TOO_TALL", offsets)

    def test_centre_required(self):
        with pytest.raises(ValueError):
            Neighbourhood("NO_CENTRE", ((1, 0),))

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Neighbourhood("DUP", ((0, 0), (0, 0)))

    def test_lookup_by_name(self):
        assert neighbourhood_by_name("con_8") is CON_8
        with pytest.raises(KeyError):
            neighbourhood_by_name("CON_5")


class TestFreshOffsets:
    def test_con8_horizontal_leading_column(self):
        """Table 2's software model: 3 fresh reads per step for CON_8."""
        fresh = CON_8.fresh_offsets(ScanOrder.HORIZONTAL)
        assert set(fresh) == {(1, -1), (1, 0), (1, 1)}

    def test_con8_vertical_leading_row(self):
        fresh = CON_8.fresh_offsets(ScanOrder.VERTICAL)
        assert set(fresh) == {(-1, 1), (0, 1), (1, 1)}

    def test_con0_always_fresh(self):
        assert CON_0.fresh_offsets(ScanOrder.HORIZONTAL) == ((0, 0),)

    def test_column9_horizontal_fully_fresh(self):
        """Perpendicular worst case: nothing is reusable."""
        assert len(COLUMN_9.fresh_offsets(ScanOrder.HORIZONTAL)) == 9

    def test_column9_vertical_single_fresh(self):
        """Scanning along the column reuses eight of nine pixels."""
        assert len(COLUMN_9.fresh_offsets(ScanOrder.VERTICAL)) == 1


class TestScanPositions:
    def test_horizontal_order(self):
        positions = list(scan_positions(FMT, ScanOrder.HORIZONTAL))
        assert positions[0] == (0, 0)
        assert positions[1] == (1, 0)
        assert positions[FMT.width] == (0, 1)
        assert len(positions) == FMT.pixels

    def test_vertical_order(self):
        positions = list(scan_positions(FMT, ScanOrder.VERTICAL))
        assert positions[1] == (0, 1)
        assert positions[FMT.height] == (1, 0)

    def test_each_pixel_exactly_once(self):
        for order in ScanOrder:
            positions = list(scan_positions(FMT, order))
            assert len(set(positions)) == FMT.pixels


class TestNeighbourPositions:
    def test_interior_full_neighbourhood(self):
        positions = neighbour_positions(2, 2, CON_8, FMT)
        assert len(positions) == 9
        assert (1, 1) in positions and (3, 3) in positions

    def test_clamped_border(self):
        positions = neighbour_positions(0, 0, CON_8, FMT, clamp=True)
        assert len(positions) == 9
        assert all(x >= 0 and y >= 0 for x, y in positions)
        assert positions.count((0, 0)) == 4  # corner replicates

    def test_unclamped_border_drops_outside(self):
        positions = neighbour_positions(0, 0, CON_8, FMT, clamp=False)
        assert len(positions) == 4

    @given(x=st.integers(0, 5), y=st.integers(0, 3))
    def test_clamped_positions_always_in_frame(self, x, y):
        for px, py in neighbour_positions(x, y, CON_24, FMT, clamp=True):
            assert FMT.contains(px, py)


def _walked_reads(neighbourhood, width, height, scan):
    """Independent reference: replay the serpentine walk with a dict
    window (the pre-vectorization scalar executor's exact mechanism)
    and count how many offsets each step must load fresh."""
    offset_set = set(neighbourhood.offsets)
    window = {}
    reads = 0
    previous = None
    for x, y in serpentine_positions(width, height, scan):
        shifted = {}
        if previous is not None:
            sx, sy = x - previous[0], y - previous[1]
            for (dx, dy), value in window.items():
                if (dx - sx, dy - sy) in offset_set:
                    shifted[(dx - sx, dy - sy)] = value
        for off in neighbourhood.offsets:
            if off not in shifted:
                shifted[off] = 0  # content is irrelevant; count the load
                reads += 1
        window = shifted
        previous = (x, y)
    return reads


class TestFreshOffsetsForStep:
    def test_con8_three_fresh_per_unit_step(self):
        for step in [(1, 0), (-1, 0), (0, 1), (0, -1)]:
            assert len(CON_8.fresh_offsets_for_step(step)) == 3

    def test_asymmetric_neighbourhood_directional_counts(self):
        """An L-shaped set reuses differently per direction."""
        ell = Neighbourhood("ell", ((0, 0), (1, 0), (0, 1)))
        # moving right: (0,0) reuses old (1,0); (1,0) and (0,1) fresh
        assert set(ell.fresh_offsets_for_step((1, 0))) == {(1, 0), (0, 1)}
        # moving left: (1,0) reuses old (0,0); others fresh
        assert set(ell.fresh_offsets_for_step((-1, 0))) == {(0, 0), (0, 1)}

    def test_far_step_everything_fresh(self):
        assert len(CON_8.fresh_offsets_for_step((10, 10))) == CON_8.size

    def test_zero_step_nothing_fresh(self):
        assert CON_8.fresh_offsets_for_step((0, 0)) == ()


class TestSerpentineReadsClosedForm:
    """The closed form must equal an independently walked window replay."""

    @pytest.mark.parametrize("nb", [CON_0, CON_4, CON_8, CON_24, COLUMN_9],
                             ids=lambda nb: nb.name)
    @pytest.mark.parametrize("scan", list(ScanOrder),
                             ids=lambda scan: scan.value)
    def test_matches_walked_reference(self, nb, scan):
        for width, height in [(1, 1), (1, 7), (7, 1), (2, 2), (12, 8),
                              (5, 33), (9, 9)]:
            assert (nb.serpentine_reads(width, height, scan)
                    == _walked_reads(nb, width, height, scan)), (
                f"{nb.name} {width}x{height} {scan}")

    def test_table2_law_qcif_style(self):
        """CON_8 horizontal reads plus the per-pixel writes give the
        ``4 * pixels + 6`` total the memory benchmark checks at QCIF."""
        w, h = 12, 8
        assert CON_8.serpentine_reads(w, h) + w * h == 4 * w * h + 6

    @given(width=st.integers(1, 20), height=st.integers(1, 20))
    def test_line_ranges_sum_to_total(self, width, height):
        for scan in ScanOrder:
            lines = height if scan is ScanOrder.HORIZONTAL else width
            for strip in [1, 3, lines]:
                total = sum(
                    CON_8.serpentine_reads_in_lines(
                        l0, min(strip, lines - l0), width, height, scan)
                    for l0 in range(0, lines, strip))
                assert total == CON_8.serpentine_reads(width, height, scan)

    def test_rejects_degenerate_plane(self):
        with pytest.raises(ValueError):
            CON_8.serpentine_reads(0, 5)
        with pytest.raises(ValueError):
            CON_8.serpentine_reads(5, -1)

    def test_rejects_out_of_range_line_run(self):
        with pytest.raises(ValueError):
            CON_8.serpentine_reads_in_lines(6, 3, 12, 8)
        with pytest.raises(ValueError):
            CON_8.serpentine_reads_in_lines(-1, 2, 12, 8)
