"""Instruction profiling: cost algebra, class splits, Amdahl bounds."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.addresslib import (ADDRESSING_CLASSES, INSTRUCTION_CLASSES,
                              InstructionCost, OpProfile,
                              PROCESSING_CLASSES)

costs = st.builds(
    InstructionCost,
    addr=st.floats(0, 100), load=st.floats(0, 100),
    store=st.floats(0, 100), alu=st.floats(0, 100),
    mul=st.floats(0, 100), branch=st.floats(0, 100))


class TestInstructionCost:
    def test_classes_partition(self):
        assert set(ADDRESSING_CLASSES) | set(PROCESSING_CLASSES) == \
            set(INSTRUCTION_CLASSES)
        assert not set(ADDRESSING_CLASSES) & set(PROCESSING_CLASSES)

    @given(costs, st.floats(0, 10))
    def test_scaled_total(self, cost, factor):
        assert cost.scaled(factor).total == pytest.approx(
            cost.total * factor)

    @given(costs, costs)
    def test_plus_is_classwise(self, a, b):
        combined = a.plus(b)
        for name in INSTRUCTION_CLASSES:
            assert getattr(combined, name) == pytest.approx(
                getattr(a, name) + getattr(b, name))

    def test_as_dict(self):
        cost = InstructionCost(addr=1, mul=2)
        d = cost.as_dict()
        assert d["addr"] == 1 and d["mul"] == 2 and d["alu"] == 0


class TestOpProfile:
    def test_add_cost_scales_by_units(self):
        profile = OpProfile()
        profile.add_cost(InstructionCost(addr=2, alu=1), units=10)
        assert profile.counts["addr"] == 20
        assert profile.total_instructions == 30

    def test_merge(self):
        a = OpProfile()
        a.add_cost(InstructionCost(load=5))
        a.add_call()
        b = OpProfile()
        b.add_cost(InstructionCost(load=3, mul=2))
        b.add_call()
        a.merge(b)
        assert a.counts["load"] == 8
        assert a.calls == 2

    def test_addressing_fraction(self):
        profile = OpProfile()
        profile.add_cost(InstructionCost(addr=6, load=2, store=1, branch=1))
        profile.add_cost(InstructionCost(alu=8, mul=2))
        assert profile.addressing_fraction == pytest.approx(0.5)

    def test_empty_profile_fraction_zero(self):
        assert OpProfile().addressing_fraction == 0.0

    def test_reset(self):
        profile = OpProfile()
        profile.add_cost(InstructionCost(alu=1))
        profile.add_call()
        profile.reset()
        assert profile.total_instructions == 0
        assert profile.calls == 0


class TestAmdahl:
    def test_infinite_acceleration_bound(self):
        profile = OpProfile()
        # 29 of 30 instructions offloadable -> bound of 30.
        profile.add_cost(InstructionCost(addr=29, alu=1))
        bound = profile.amdahl_speedup_bound(
            offloadable_fraction=29 / 30)
        assert bound == pytest.approx(30.0)

    def test_finite_acceleration(self):
        profile = OpProfile()
        bound = profile.amdahl_speedup_bound(offloadable_fraction=0.9,
                                             accel=9.0)
        assert bound == pytest.approx(1.0 / (0.1 + 0.9 / 9))

    def test_fully_offloadable_is_unbounded(self):
        profile = OpProfile()
        assert profile.amdahl_speedup_bound(
            offloadable_fraction=1.0) == float("inf")

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            OpProfile().amdahl_speedup_bound(offloadable_fraction=1.5)

    def test_default_uses_addressing_fraction(self):
        profile = OpProfile()
        profile.add_cost(InstructionCost(addr=3, alu=1))
        assert profile.amdahl_speedup_bound() == pytest.approx(4.0)

    @given(fraction=st.floats(0.0, 0.99))
    def test_bound_monotone_in_fraction(self, fraction):
        p = OpProfile()
        low = p.amdahl_speedup_bound(offloadable_fraction=fraction)
        high = p.amdahl_speedup_bound(
            offloadable_fraction=min(fraction + 0.005, 0.995))
        assert high >= low
