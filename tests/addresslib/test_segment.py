"""Segment addressing: geodesic expansion semantics."""

import numpy as np
import pytest

from repro.addresslib import (CON_4, CON_8, OpProfile, SegmentProcessor,
                              luma_band_criterion, luma_delta_criterion,
                              yuv_delta_criterion)
from repro.image import ImageFormat, Frame, blob_frame

FMT = ImageFormat("T20", 20, 20)


def square_frame(low=20, high=200):
    """A bright 6x6 square on dark background."""
    frame = Frame(FMT)
    frame.y[:] = low
    frame.y[5:11, 5:11] = high
    return frame


class TestExpansionBasics:
    def test_segment_fills_homogeneous_square(self):
        frame = square_frame()
        result = SegmentProcessor().expand(
            frame, [(7, 7)], luma_delta_criterion(10))
        assert result.pixels_processed == 36
        assert result.segment_mask(0).sum() == 36
        assert (result.labels[5:11, 5:11] == 0).all()

    def test_expansion_respects_criterion_boundary(self):
        frame = square_frame()
        result = SegmentProcessor().expand(
            frame, [(7, 7)], luma_delta_criterion(10))
        assert (result.labels[0:5, :] == -1).all()

    def test_geodesic_distance_is_bfs_depth(self):
        frame = Frame(FMT)
        frame.y[:] = 100  # fully homogeneous: expansion floods the frame
        result = SegmentProcessor().expand(
            frame, [(0, 0)], luma_delta_criterion(5))
        assert result.distance[0, 0] == 0
        assert result.distance[0, 5] == 5   # 4-connected Manhattan
        assert result.distance[3, 4] == 7
        assert result.pixels_processed == FMT.pixels

    def test_processing_order_is_nondecreasing_distance(self):
        """'All pixels of the segment are processed in order of geodesic
        distance' -- the defining property of the scheme."""
        frame = square_frame()
        result = SegmentProcessor().expand(
            frame, [(7, 7)], luma_delta_criterion(10))
        depths = [int(result.distance[y, x]) for x, y in result.order]
        assert depths == sorted(depths)

    def test_eight_connectivity_crosses_diagonals(self):
        frame = Frame(FMT)
        frame.y[:] = 10
        # A diagonal line of bright pixels.
        for i in range(5):
            frame.y[i, i] = 200
        criterion = luma_band_criterion(200, 5)
        four = SegmentProcessor(CON_4).expand(frame, [(0, 0)], criterion)
        eight = SegmentProcessor(CON_8).expand(frame, [(0, 0)], criterion)
        assert four.pixels_processed == 1
        assert eight.pixels_processed == 5


class TestSeeds:
    def test_multiple_seeds_multiple_segments(self):
        frame = blob_frame(FMT, [(4, 4), (15, 15)], radius=3)
        result = SegmentProcessor().expand(
            frame, [(4, 4), (15, 15)], luma_delta_criterion(8))
        sizes = result.segment_sizes()
        assert set(sizes) == {0, 1}
        assert sizes[0] == sizes[1]  # equal blobs

    def test_competing_seeds_split_by_distance(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        result = SegmentProcessor().expand(
            frame, [(0, 10), (19, 10)], luma_delta_criterion(5))
        # Left half belongs to seed 0, right half to seed 1.
        assert result.labels[10, 2] == 0
        assert result.labels[10, 17] == 1
        assert result.pixels_processed == FMT.pixels

    def test_out_of_frame_seed_rejected(self):
        frame = Frame(FMT)
        with pytest.raises(ValueError):
            SegmentProcessor().expand(frame, [(30, 0)],
                                      luma_delta_criterion(5))

    def test_duplicate_seed_first_wins(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        result = SegmentProcessor().expand(
            frame, [(5, 5), (5, 5)], luma_delta_criterion(5))
        assert (result.labels[result.labels >= 0] == 0).all()


class TestLimitsAndSideEffects:
    def test_max_pixels_stops_expansion(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        result = SegmentProcessor().expand(
            frame, [(10, 10)], luma_delta_criterion(5), max_pixels=25)
        assert result.pixels_processed == 25

    def test_process_callback_sees_every_pixel(self):
        frame = square_frame()
        touched = []
        SegmentProcessor().expand(
            frame, [(7, 7)], luma_delta_criterion(10),
            process=lambda f, x, y: touched.append((x, y)))
        assert len(touched) == 36

    def test_statistics_side_table(self):
        frame = square_frame()
        result = SegmentProcessor().expand(
            frame, [(7, 7)], luma_delta_criterion(10))
        stats = result.statistics
        assert stats.area(0) == 36
        assert stats.mean_luma(0) == pytest.approx(200.0)
        assert stats.bounding_box(0) == (5, 5, 10, 10)

    def test_label_into_aux(self):
        frame = square_frame()
        result = SegmentProcessor().label_into_aux(
            frame, [(7, 7)], luma_delta_criterion(10), base_label=5)
        assert (frame.aux[result.segment_mask(0)] == 5).all()
        assert frame.aux[0, 0] == 0

    def test_profile_accumulates(self):
        profile = OpProfile()
        frame = square_frame()
        SegmentProcessor(profile=profile).expand(
            frame, [(7, 7)], luma_delta_criterion(10))
        assert profile.total_instructions > 0
        assert profile.calls == 1
        # Queue/criteria work dominates: addressing classes > processing.
        assert profile.addressing_fraction > 0.7


class TestCriteria:
    def test_yuv_criterion_blocks_on_chroma(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        frame.u[:, :10] = 100
        frame.u[:, 10:] = 200
        criterion = yuv_delta_criterion(max_luma=50, max_chroma=10)
        result = SegmentProcessor().expand(frame, [(0, 0)], criterion)
        assert (result.labels[:, 10:] == -1).all()
        assert (result.labels[:, :10] == 0).all()

    def test_band_criterion_anchored_to_reference(self):
        frame = Frame(FMT)
        # A slow ramp: pairwise deltas small, total drift large.
        frame.y[:] = np.tile(np.arange(0, 100, 5, dtype=np.uint8), (20, 1))
        pairwise = SegmentProcessor().expand(
            frame, [(0, 0)], luma_delta_criterion(5))
        banded = SegmentProcessor().expand(
            frame, [(0, 0)], luma_band_criterion(0, 20))
        assert pairwise.pixels_processed == FMT.pixels  # drift leaks
        assert banded.pixels_processed == 5 * 20        # band stops it
