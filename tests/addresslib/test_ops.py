"""Pixel sub-functions: scalar/vector consistency and semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addresslib import (CON_4, CON_8, ChannelSet, INTER_OPS,
                              INTRA_OPS, fir_op, scale_offset_op,
                              threshold_op)
from repro.addresslib.ops import (INTER_ABSDIFF, INTER_ADD, INTER_AVG,
                                  INTER_MAX, INTER_MIN, INTER_MUL,
                                  INTER_SUB, INTRA_DILATE, INTRA_ERODE,
                                  INTRA_GRAD, INTRA_HOMOGENEITY,
                                  INTRA_MEDIAN3, INTRA_MORPH_GRAD)

bytes_ = st.integers(0, 255)


class TestChannelSet:
    def test_members(self):
        assert ChannelSet.Y.channel_names == ("Y",)
        assert ChannelSet.YUV.channel_names == ("Y", "U", "V")
        assert ChannelSet.YUV.count == 3


class TestInterScalarSemantics:
    @given(a=bytes_, b=bytes_)
    def test_add_saturates(self, a, b):
        assert INTER_ADD.apply_scalar(a, b) == min(a + b, 255)

    @given(a=bytes_, b=bytes_)
    def test_sub_saturates_at_zero(self, a, b):
        assert INTER_SUB.apply_scalar(a, b) == max(a - b, 0)

    @given(a=bytes_, b=bytes_)
    def test_absdiff_symmetric(self, a, b):
        assert (INTER_ABSDIFF.apply_scalar(a, b)
                == INTER_ABSDIFF.apply_scalar(b, a) == abs(a - b))

    @given(a=bytes_, b=bytes_)
    def test_min_max_bracket(self, a, b):
        low = INTER_MIN.apply_scalar(a, b)
        high = INTER_MAX.apply_scalar(a, b)
        assert low <= high
        assert {low, high} == {min(a, b), max(a, b)}

    @given(a=bytes_, b=bytes_)
    def test_avg_rounds(self, a, b):
        assert INTER_AVG.apply_scalar(a, b) == (a + b + 1) // 2

    def test_mul_fixed_point(self):
        assert INTER_MUL.apply_scalar(255, 255) == (255 * 255) >> 8
        assert INTER_MUL.apply_scalar(0, 200) == 0


class TestInterVectorMatchesScalar:
    @pytest.mark.parametrize("op", list(INTER_OPS.values()),
                             ids=lambda op: op.name)
    def test_elementwise_agreement(self, op):
        rng = np.random.default_rng(17)
        a = rng.integers(0, 256, size=(7, 9)).astype(np.uint8)
        b = rng.integers(0, 256, size=(7, 9)).astype(np.uint8)
        vector = op.apply_vector(a, b)
        for y in range(7):
            for x in range(9):
                assert int(vector[y, x]) == op.apply_scalar(
                    int(a[y, x]), int(b[y, x])), op.name

    @pytest.mark.parametrize("op", list(INTER_OPS.values()),
                             ids=lambda op: op.name)
    def test_output_in_byte_range(self, op):
        rng = np.random.default_rng(18)
        a = rng.integers(0, 256, size=(5, 5)).astype(np.uint8)
        b = rng.integers(0, 256, size=(5, 5)).astype(np.uint8)
        out = op.apply_vector(a, b).astype(int)
        assert out.min() >= 0 and out.max() <= 255


class TestIntraVectorMatchesScalar:
    @pytest.mark.parametrize("op", list(INTRA_OPS.values()),
                             ids=lambda op: op.name)
    def test_stack_agreement(self, op):
        rng = np.random.default_rng(19)
        stack = rng.integers(0, 256,
                             size=(op.neighbourhood.size, 4, 6)
                             ).astype(np.uint8)
        vector = op.apply_vector(stack)
        for y in range(4):
            for x in range(6):
                values = [int(stack[i, y, x])
                          for i in range(op.neighbourhood.size)]
                assert int(vector[y, x]) == op.apply_scalar(values), op.name

    def test_wrong_stack_depth_rejected(self):
        with pytest.raises(ValueError):
            INTRA_GRAD.apply_vector(np.zeros((3, 2, 2), np.uint8))

    def test_wrong_scalar_arity_rejected(self):
        with pytest.raises(ValueError):
            INTRA_GRAD.apply_scalar([1, 2, 3])


class TestMorphology:
    def test_erode_dilate_bracket_centre(self):
        values = [5, 200, 40, 90, 13, 77, 255, 0, 128]
        assert INTRA_ERODE.apply_scalar(values) == 0
        assert INTRA_DILATE.apply_scalar(values) == 255
        assert INTRA_MORPH_GRAD.apply_scalar(values) == 255

    def test_morph_gradient_zero_on_flat(self):
        assert INTRA_MORPH_GRAD.apply_scalar([9] * 9) == 0

    def test_median_of_known_set(self):
        values = [9, 1, 8, 2, 7, 3, 6, 4, 5]
        assert INTRA_MEDIAN3.apply_scalar(values) == 5


class TestGradientOps:
    def test_grad_zero_on_flat(self):
        assert INTRA_GRAD.apply_scalar([100] * 9) == 0

    def test_grad_responds_to_edge(self):
        # Offsets ordered row-major: left column dark, right bright.
        values = [0, 128, 255, 0, 128, 255, 0, 128, 255]
        assert INTRA_GRAD.apply_scalar(values) > 100

    def test_homogeneity_zero_on_flat(self):
        assert INTRA_HOMOGENEITY.apply_scalar([50] * 9) == 0

    def test_homogeneity_max_deviation(self):
        values = [50] * 9
        values[0] = 80
        assert INTRA_HOMOGENEITY.apply_scalar(values) == 30


class TestParameterisedOps:
    def test_threshold(self):
        op = threshold_op(100)
        assert op.apply_scalar([99]) == 0
        assert op.apply_scalar([100]) == 255

    def test_scale_offset(self):
        op = scale_offset_op(1, 2, 10)
        assert op.apply_scalar([100]) == 60
        assert op.apply_scalar([255]) == 137

    def test_scale_offset_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            scale_offset_op(1, 0, 0)

    def test_fir_identity_kernel(self):
        weights = [0] * 9
        weights[CON_8.offsets.index((0, 0))] = 1
        op = fir_op("identity", CON_8, weights)
        values = list(range(9))
        centre = values[CON_8.offsets.index((0, 0))]
        assert op.apply_scalar(values) == centre

    def test_fir_weight_count_checked(self):
        with pytest.raises(ValueError):
            fir_op("bad", CON_4, [1, 2, 3])

    @given(st.lists(bytes_, min_size=9, max_size=9))
    @settings(max_examples=50)
    def test_fir_box_matches_mean(self, values):
        op = fir_op("box_shift", CON_8, [1] * 9, shift=3)
        expected = min(sum(values) >> 3, 255)
        assert op.apply_scalar(values) == expected


class TestCosts:
    @pytest.mark.parametrize("op", list(INTRA_OPS.values()),
                             ids=lambda op: op.name)
    def test_every_op_has_processing_cost(self, op):
        assert op.cost.total > 0

    def test_engine_latency_at_least_one(self):
        for op in list(INTRA_OPS.values()) + list(INTER_OPS.values()):
            assert op.engine_cycles >= 1
