"""Executors: vector vs counted-scalar equivalence and access counts.

The key consistency contract of the whole reproduction: the fast numpy
executor, the counted per-pixel executor, and the analytic cost model
must agree -- on results where representations allow, and on the memory
access counts that become Table 2.
"""

import numpy as np
import pytest

from repro.addresslib import (COLUMN_9, CON_0, CON_4, CON_8, CON_24,
                              COUNTED_EXECUTOR_KINDS, ChannelSet,
                              CountedExecutor, INTER_ABSDIFF, INTER_ADD,
                              INTRA_COPY, INTRA_ERODE, INTRA_GRAD,
                              INTRA_OPS, ScanOrder, SoftwareCostModel,
                              VectorExecutor, counted_executor,
                              neighbourhood_stack,
                              neighbourhood_stack_shifted,
                              serpentine_positions)
from repro.image import (Channel, Frame, ImageFormat, PlanarFrame420,
                         noise_frame)

FMT = ImageFormat("T12x8", 12, 8)


def planar_pair(frame):
    src = PlanarFrame420.from_frame(frame)
    dst = PlanarFrame420(frame.format, src.counter)
    return src, dst


class TestSerpentine:
    def test_covers_every_pixel_once(self):
        positions = list(serpentine_positions(5, 4))
        assert len(positions) == 20
        assert len(set(positions)) == 20

    def test_adjacent_steps_are_unit_moves(self):
        """The window always slides by exactly one pixel, so reuse holds
        across line turns -- the point of the boustrophedon scan."""
        for order in ScanOrder:
            positions = list(serpentine_positions(6, 5, order))
            for (x0, y0), (x1, y1) in zip(positions, positions[1:]):
                assert abs(x1 - x0) + abs(y1 - y0) == 1

    def test_vertical_orientation(self):
        positions = list(serpentine_positions(3, 4, ScanOrder.VERTICAL))
        assert positions[0] == (0, 0)
        assert positions[1] == (0, 1)


class TestNeighbourhoodStack:
    def test_centre_plane_is_original(self):
        frame = noise_frame(FMT, seed=31)
        stack = neighbourhood_stack(frame.y, CON_8)
        centre = CON_8.offsets.index((0, 0))
        assert np.array_equal(stack[centre], frame.y)

    def test_shift_semantics(self):
        frame = noise_frame(FMT, seed=32)
        stack = neighbourhood_stack(frame.y, CON_8)
        right = CON_8.offsets.index((1, 0))
        assert np.array_equal(stack[right][:, :-1], frame.y[:, 1:])

    def test_border_clamping(self):
        frame = noise_frame(FMT, seed=33)
        stack = neighbourhood_stack(frame.y, CON_8)
        left = CON_8.offsets.index((-1, 0))
        assert np.array_equal(stack[left][:, 0], frame.y[:, 0])


class TestWindowedVsShiftedStack:
    """The sliding-window fast path against the shifted-plane reference.

    The windowed implementation (one edge pad + strided views) must be
    bit-identical to the per-offset clamped-shift reference for every
    named neighbourhood over the corpus geometries -- it replaced the
    reference on the executor's hot path, so any divergence is a
    correctness bug, not a tolerance.
    """

    GEOMETRIES = [(4, 8), (5, 33), (12, 8), (24, 48), (176, 144)]
    NEIGHBOURHOODS = [CON_0, CON_4, CON_8, CON_24, COLUMN_9]

    @pytest.mark.parametrize("width,height", GEOMETRIES)
    @pytest.mark.parametrize("nb", NEIGHBOURHOODS,
                             ids=lambda nb: nb.name)
    def test_bit_identical_stacks(self, width, height, nb):
        fmt = ImageFormat(f"W{width}x{height}", width, height)
        plane = noise_frame(fmt, seed=width * 1000 + height).y
        fast = neighbourhood_stack(plane, nb)
        reference = neighbourhood_stack_shifted(plane, nb)
        assert fast.shape == reference.shape
        assert np.array_equal(fast, reference)

    def test_intra_ops_unchanged_by_fast_path(self):
        frame = noise_frame(ImageFormat("W24x33", 24, 33), seed=77)
        for op in sorted(INTRA_OPS.values(), key=lambda op: op.name):
            via_fast = VectorExecutor.intra(op, frame)
            expected = frame.copy()
            stack = neighbourhood_stack_shifted(frame.y, op.neighbourhood)
            expected.y[:] = op.apply_vector(stack)
            assert via_fast.equals(expected)


class TestVectorVsCountedResults:
    def test_intra_grad_luma_agrees(self):
        frame = noise_frame(FMT, seed=34)
        vector = VectorExecutor.intra(INTRA_GRAD, frame)
        src, dst = planar_pair(frame)
        CountedExecutor().intra(INTRA_GRAD, src, dst)
        assert np.array_equal(dst.plane(Channel.Y), vector.y)

    def test_inter_add_luma_agrees(self):
        a = noise_frame(FMT, seed=35)
        b = noise_frame(FMT, seed=36)
        vector = VectorExecutor.inter(INTER_ADD, a, b)
        pa = PlanarFrame420.from_frame(a)
        pb = PlanarFrame420.from_frame(b, pa.counter)
        out = PlanarFrame420(FMT, pa.counter)
        CountedExecutor().inter(INTER_ADD, pa, pb, out)
        assert np.array_equal(out.plane(Channel.Y), vector.y)

    def test_intra_erode_vertical_scan_agrees(self):
        frame = noise_frame(FMT, seed=37)
        vector = VectorExecutor.intra(INTRA_ERODE, frame)
        src, dst = planar_pair(frame)
        CountedExecutor(scan=ScanOrder.VERTICAL).intra(INTRA_ERODE, src, dst)
        assert np.array_equal(dst.plane(Channel.Y), vector.y)


@pytest.mark.parametrize("kind", COUNTED_EXECUTOR_KINDS)
class TestAccessCounts:
    """Access-count laws hold for the scalar walk *and* the strip path."""

    def test_inter_y_three_per_pixel(self, kind):
        a = noise_frame(FMT, seed=38)
        pa = PlanarFrame420.from_frame(a)
        pb = PlanarFrame420.from_frame(a, pa.counter)
        out = PlanarFrame420(FMT, pa.counter)
        counted_executor(kind).inter(INTER_ABSDIFF, pa, pb, out)
        assert pa.counter.total == 3 * FMT.pixels

    def test_intra_con0_two_per_pixel(self, kind):
        frame = noise_frame(FMT, seed=39)
        src, dst = planar_pair(frame)
        counted_executor(kind).intra(INTRA_COPY, src, dst)
        assert src.counter.total == 2 * FMT.pixels

    def test_intra_con8_steady_state_four_per_pixel(self, kind):
        """3 fresh reads + 1 write per step; only the very first window
        pays the full 9-pixel fill (+6 accesses overall)."""
        frame = noise_frame(FMT, seed=40)
        src, dst = planar_pair(frame)
        counted_executor(kind).intra(INTRA_GRAD, src, dst)
        assert src.counter.total == 4 * FMT.pixels + 6

    def test_intra_con8_yuv_adds_half(self, kind):
        """4:2:0 chroma planes add a quarter of the luma traffic each."""
        frame = noise_frame(FMT, seed=41)
        src, dst = planar_pair(frame)
        counted_executor(kind).intra(INTRA_GRAD, src, dst, ChannelSet.YUV)
        luma_only = 4 * FMT.pixels + 6
        chroma = 2 * (4 * (FMT.pixels // 4) + 6)
        assert src.counter.total == luma_only + chroma

    def test_counted_matches_analytic_up_to_window_fill(self, kind):
        model = SoftwareCostModel()
        frame = noise_frame(FMT, seed=42)
        src, dst = planar_pair(frame)
        counted_executor(kind).intra(INTRA_GRAD, src, dst)
        ideal = model.intra_accesses(INTRA_GRAD, FMT)
        assert 0 <= src.counter.total - ideal <= 3 * CON_8.size


class TestAnalyticProfiles:
    def test_profile_loads_match_counted_reads(self):
        """The analytic instruction profile's load count equals the
        counted executor's reads (steady state)."""
        model = SoftwareCostModel()
        frame = noise_frame(FMT, seed=43)
        src, dst = planar_pair(frame)
        CountedExecutor().intra(INTRA_GRAD, src, dst)
        profile = model.intra_profile(INTRA_GRAD, FMT)
        assert profile.counts["load"] == pytest.approx(
            src.counter.total_reads, rel=0.03)
        assert profile.counts["store"] == src.counter.total_writes

    def test_inter_profile_loads(self):
        model = SoftwareCostModel()
        profile = model.inter_profile(INTER_ABSDIFF, FMT)
        assert profile.counts["load"] == 2 * FMT.pixels
        assert profile.counts["store"] == FMT.pixels
        assert profile.calls == 1

    def test_per_access_overhead_scales_with_accesses(self):
        from repro.addresslib import InstructionCost
        base = SoftwareCostModel()
        heavy = SoftwareCostModel(
            per_access_overhead=InstructionCost(alu=10))
        delta = (heavy.intra_profile(INTRA_GRAD, FMT).total_instructions
                 - base.intra_profile(INTRA_GRAD, FMT).total_instructions)
        assert delta == 10 * 4 * FMT.pixels  # 4 accesses/pixel x 10


class TestReductions:
    def test_inter_reduce_equals_manual_sum(self):
        a = noise_frame(FMT, seed=44)
        b = noise_frame(FMT, seed=45)
        total = VectorExecutor.inter_reduce(INTER_ABSDIFF, a, b)
        expected = int(np.abs(a.y.astype(int) - b.y.astype(int)).sum())
        assert total == expected

    def test_histogram_counts_every_pixel(self):
        frame = noise_frame(FMT, seed=46)
        hist = VectorExecutor.histogram(frame)
        assert hist.sum() == FMT.pixels
        assert hist[int(frame.y[0, 0])] >= 1


class TestFormatMismatch:
    def test_inter_rejects_size_mismatch(self):
        a = noise_frame(FMT, seed=47)
        b = noise_frame(ImageFormat("T6", 6, 6), seed=48)
        with pytest.raises(ValueError):
            VectorExecutor.inter(INTER_ADD, a, b)
