"""Synthetic sequences: determinism, ground truth, Table 3 geometry."""

import numpy as np
import pytest

from repro.gme import (DOME, MOVIE, PAPER_TABLE3, PISA, SINGAPORE,
                       SyntheticSequence, TABLE3_SEQUENCES,
                       sequence_by_name)
from repro.image import CIF


class TestSpecs:
    def test_four_sequences_in_paper_order(self):
        names = [spec.name for spec in TABLE3_SEQUENCES]
        assert names == ["Singapore", "Dome", "Pisa", "Movie"]
        assert [row[0] for row in PAPER_TABLE3] == names

    def test_frame_counts_track_intra_call_budget(self):
        """Frame counts were derived from Table 3's intra column via the
        deterministic 9-intra-calls-per-pair budget (2 per frame pyramid
        + 7 per pair); all land within 0.2 % of the paper's counts."""
        for spec, paper in zip(TABLE3_SEQUENCES, PAPER_TABLE3):
            predicted_intra = 2 * spec.frames + 7 * (spec.frames - 1)
            assert predicted_intra == pytest.approx(paper[3], rel=0.002)

    def test_pisa_is_the_long_sequence(self):
        assert PISA.frames > 1.8 * max(SINGAPORE.frames, DOME.frames,
                                       MOVIE.frames)

    def test_lookup_by_name(self):
        assert sequence_by_name("pisa") is PISA
        with pytest.raises(KeyError):
            sequence_by_name("venice")

    def test_scaled_frames(self):
        assert SINGAPORE.scaled_frames(0.1) == round(SINGAPORE.frames * 0.1)
        assert SINGAPORE.scaled_frames(1.0) == SINGAPORE.frames
        with pytest.raises(ValueError):
            SINGAPORE.scaled_frames(0.0)


class TestRendering:
    def test_frames_are_cif(self):
        seq = SyntheticSequence(SINGAPORE, frames_override=3)
        frame = seq.frame(0)
        assert frame.width == CIF.width and frame.height == CIF.height

    def test_deterministic(self):
        a = SyntheticSequence(MOVIE, frames_override=3).frame(2)
        b = SyntheticSequence(MOVIE, frames_override=3).frame(2)
        assert a.equals(b)

    def test_consecutive_frames_differ(self):
        seq = SyntheticSequence(SINGAPORE, frames_override=3)
        assert not seq.frame(0).equals(seq.frame(1))

    def test_index_bounds(self):
        seq = SyntheticSequence(SINGAPORE, frames_override=3)
        with pytest.raises(IndexError):
            seq.frame(3)

    def test_iteration_yields_all_frames(self):
        seq = SyntheticSequence(DOME, frames_override=4)
        assert len(list(seq)) == 4


class TestGroundTruth:
    def test_true_pair_model_matches_pan_speed(self):
        seq = SyntheticSequence(SINGAPORE, frames_override=4)
        truth = seq.true_pair_model(0)
        # Singapore pans at ~1.9 px/frame horizontally.
        assert truth.tx == pytest.approx(1.9, abs=0.01)
        assert truth.ty == pytest.approx(0.12, abs=0.01)

    def test_truth_consistent_with_rendering(self):
        """Warping frame i+1 by the true pair model reproduces frame i
        (up to resampling error) -- the sequences are self-consistent."""
        from repro.gme import warp_luma
        seq = SyntheticSequence(SINGAPORE, frames_override=3)
        ref = seq.frame(0).y.astype(np.float64)
        cur = seq.frame(1).y.astype(np.float64)
        warped, valid = warp_luma(cur, seq.true_pair_model(0))
        err = np.abs(warped[valid] - ref[valid]).mean()
        assert err < 2.0

    def test_movie_has_jitter(self):
        seq = SyntheticSequence(MOVIE, frames_override=6)
        deltas = [seq.true_pair_model(i).tx for i in range(5)]
        assert np.std(deltas) > 0.3  # jittery camera

    def test_singapore_is_smooth(self):
        seq = SyntheticSequence(SINGAPORE, frames_override=6)
        deltas = [seq.true_pair_model(i).tx for i in range(5)]
        assert np.std(deltas) < 0.01
