"""The GME estimator: convergence, call mix, warm starting."""

import numpy as np
import pytest

from repro.addresslib import AddressLib, AddressingMode
from repro.gme import (AffineModel, GlobalMotionEstimator, GmeSettings,
                       TranslationalModel, warp_luma)
from repro.image import CIF, ImageFormat, frame_from_luma, textured_panorama

FMT = ImageFormat("G96", 96, 96)


def frame_pair(tx=3.0, ty=-2.0, seed=9, fmt=FMT, model=None):
    """A reference/current pair with known global motion.

    The current frame's pixel (x, y) samples the scene at
    ``pose(x, y)`` shifted by the pair motion, so the true current ->
    reference model is the given translation/affine.
    """
    pano = textured_panorama(fmt.width * 3, fmt.height * 3, seed=seed)
    base = AffineModel(tx=fmt.width, ty=fmt.height)
    ref_luma, _ = warp_luma(pano, base,
                            output_shape=(fmt.height, fmt.width))
    # cur -> ref is ``pair``, so cur's pose is the ref pose after pair:
    # pose_cur = pose_ref o pair  (matching SyntheticSequence semantics).
    pair = model or TranslationalModel(tx, ty).to_affine()
    cur_pose = base.compose(pair)
    cur_luma, _ = warp_luma(pano, cur_pose,
                            output_shape=(fmt.height, fmt.width))
    return frame_from_luma(fmt, ref_luma), frame_from_luma(fmt, cur_luma)


def estimate(ref, cur, settings=None, init=None, lib=None):
    lib = lib or AddressLib()
    estimator = GlobalMotionEstimator(lib, settings)
    ref_pyr = estimator.build_pyramid(ref)
    cur_pyr = estimator.build_pyramid(cur)
    return estimator.estimate_pair(ref_pyr, cur_pyr, init=init), lib


class TestConvergence:
    def test_recovers_translation(self):
        ref, cur = frame_pair(tx=3.0, ty=-2.0)
        estimate_result, _ = estimate(ref, cur)
        assert estimate_result.model.tx == pytest.approx(3.0, abs=0.15)
        assert estimate_result.model.ty == pytest.approx(-2.0, abs=0.15)

    def test_recovers_subpixel_translation(self):
        ref, cur = frame_pair(tx=1.25, ty=0.5)
        estimate_result, _ = estimate(ref, cur)
        assert estimate_result.model.tx == pytest.approx(1.25, abs=0.15)
        assert estimate_result.model.ty == pytest.approx(0.5, abs=0.15)

    def test_recovers_larger_motion_through_pyramid(self):
        """8-pixel motion exceeds the linearisation range at full
        resolution; the coarse level brings it in range."""
        ref, cur = frame_pair(tx=8.0, ty=5.0)
        estimate_result, _ = estimate(ref, cur)
        assert estimate_result.model.tx == pytest.approx(8.0, abs=0.3)
        assert estimate_result.model.ty == pytest.approx(5.0, abs=0.3)

    def test_recovers_mild_zoom_with_affine(self):
        truth = AffineModel(a=1.02, d=1.02, tx=1.0, ty=0.5)
        ref, cur = frame_pair(model=truth, seed=13)
        estimate_result, _ = estimate(ref, cur)
        assert estimate_result.model.a == pytest.approx(1.02, abs=0.01)
        assert estimate_result.model.d == pytest.approx(1.02, abs=0.01)

    def test_identity_pair_stays_identity(self):
        ref, cur = frame_pair(tx=0.0, ty=0.0)
        estimate_result, _ = estimate(ref, cur)
        assert abs(estimate_result.model.tx) < 0.05
        assert abs(estimate_result.model.ty) < 0.05

    def test_sad_decreases_vs_unaligned(self):
        ref, cur = frame_pair(tx=4.0, ty=0.0)
        estimate_result, _ = estimate(ref, cur)
        from repro.gme import sad
        unaligned = sad(ref.y, cur.y)
        assert estimate_result.final_sad < 0.35 * unaligned


class TestWarmStart:
    def test_warm_start_cuts_iterations(self):
        ref, cur = frame_pair(tx=6.0, ty=3.0)
        cold, _ = estimate(ref, cur)
        warm, _ = estimate(ref, cur, init=cold.model)
        assert warm.iterations <= cold.iterations
        assert warm.model.tx == pytest.approx(6.0, abs=0.3)


class TestCallMix:
    def test_pyramid_build_intra_calls(self):
        lib = AddressLib()
        estimator = GlobalMotionEstimator(lib, GmeSettings(levels=3))
        ref, _ = frame_pair()
        pyramid = estimator.build_pyramid(ref)
        assert len(pyramid) == 3
        assert lib.log.intra_calls == 2  # one box filter per extra level
        assert pyramid[1].shape == (FMT.height // 2, FMT.width // 2)

    def test_per_pair_call_structure(self):
        """2 Sobel intra calls per level + 1 mask call; 1 inter (SAD)
        call per refinement iteration -- the Table 3 call budget."""
        ref, cur = frame_pair()
        result, lib = estimate(ref, cur)
        settings = GmeSettings()
        expected_intra = (2 * (settings.levels - 1)   # two pyramids
                          + 2 * settings.levels       # sobel x/y
                          + 1)                        # blend mask
        assert lib.log.intra_calls == expected_intra
        assert lib.log.inter_calls == result.iterations
        assert all(r.op_name.endswith("+reduce")
                   for r in lib.log.records
                   if r.mode is AddressingMode.INTER)

    def test_iteration_cap_respected(self):
        settings = GmeSettings(max_iterations_per_level=2)
        ref, cur = frame_pair(tx=5.0, ty=4.0)
        result, _ = estimate(ref, cur, settings=settings)
        assert all(n <= 2 for n in result.per_level_iterations)

    def test_blend_mask_shape(self):
        ref, cur = frame_pair()
        result, _ = estimate(ref, cur)
        assert result.blend_mask.shape == (FMT.height, FMT.width)
        assert result.blend_mask.dtype == bool


class TestHostCharging:
    def test_charge_callback_invoked(self):
        charges = []
        lib = AddressLib()
        estimator = GlobalMotionEstimator(lib, charge=charges.append)
        ref, cur = frame_pair()
        ref_pyr = estimator.build_pyramid(ref)
        cur_pyr = estimator.build_pyramid(cur)
        estimator.estimate_pair(ref_pyr, cur_pyr)
        assert sum(charges) > 0


class TestRobustness:
    def test_flat_content_does_not_crash(self):
        """Zero gradients make the normal equations singular; the
        estimator must bail out gracefully and return the warm start."""
        from repro.image import Frame
        flat = Frame(FMT)
        flat.y[:] = 128
        result, _ = estimate(flat, flat)
        assert result.model.tx == pytest.approx(0.0)
        assert result.model.ty == pytest.approx(0.0)

    def test_entirely_out_of_frame_motion_does_not_crash(self):
        """A warm start that throws the warp fully outside the frame
        leaves no valid pixels; the level must terminate."""
        ref, cur = frame_pair(tx=1.0, ty=0.0)
        bad_init = AffineModel(tx=-500.0, ty=-500.0)
        result, _ = estimate(ref, cur, init=bad_init)
        assert result.iterations >= 1   # terminated, no exception
