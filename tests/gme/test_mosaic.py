"""Mosaic compositing from composed global motion."""

import numpy as np
import pytest

from repro.gme import AffineModel, Mosaic, TranslationalModel, warp_luma
from repro.image import textured_panorama


def scene_and_frames(n=4, step=6.0, fw=48, fh=40, seed=21):
    """Frames panning across a known scene, with their true poses."""
    scene = textured_panorama(200, 120, seed=seed)
    frames = []
    poses = []
    for index in range(n):
        pose = AffineModel(tx=20.0 + step * index, ty=15.0)
        luma, _ = warp_luma(scene, pose, output_shape=(fh, fw))
        frames.append(luma)
        poses.append(pose)
    return scene, frames, poses


class TestAccumulation:
    def test_single_frame_identity_placement(self):
        scene, frames, poses = scene_and_frames(n=1)
        mosaic = Mosaic(width=60, height=50)
        mosaic.accumulate(frames[0], AffineModel())
        out = mosaic.composite()
        assert np.allclose(out[:39, :47], frames[0][:39, :47], atol=1e-6)

    def test_coverage_grows_with_pan(self):
        scene, frames, poses = scene_and_frames(n=3)
        mosaic = Mosaic(width=80, height=50)
        first = poses[0]
        single_coverage = None
        for index, frame in enumerate(frames):
            to_first = first.inverse().compose(poses[index])
            mosaic.accumulate(frame, to_first)
            if index == 0:
                single_coverage = mosaic.coverage
        assert mosaic.coverage > single_coverage
        assert mosaic.frames_accumulated == 3

    def test_mosaic_reconstructs_scene(self):
        """With true poses, the mosaic equals the scene crop: the
        'Mosaic with the global motion of the scene' of section 4.3."""
        scene, frames, poses = scene_and_frames(n=4)
        mosaic = Mosaic(width=90, height=45,
                        origin=(0.0, 0.0))
        first = poses[0]
        for frame, pose in zip(frames, poses):
            mosaic.accumulate(frame, first.inverse().compose(pose))
        # Mosaic (x, y) corresponds to scene (x + 20, y + 15).
        reference, _ = warp_luma(scene, first, output_shape=mosaic.shape)
        assert mosaic.reconstruction_error(reference) < 1.0

    def test_origin_offsets_placement(self):
        scene, frames, _ = scene_and_frames(n=1)
        mosaic = Mosaic(width=80, height=60, origin=(10.0, 5.0))
        mosaic.accumulate(frames[0], AffineModel())
        out = mosaic.composite()
        assert out[5, 10] == pytest.approx(frames[0][0, 0], abs=1e-6)
        assert (mosaic.composite()[:5, :10] == 0).all()

    def test_blend_mask_excludes_pixels(self):
        scene, frames, _ = scene_and_frames(n=1)
        mask = np.zeros(frames[0].shape, dtype=bool)
        mask[:10, :10] = True
        mosaic = Mosaic(width=60, height=50)
        mosaic.accumulate(frames[0], AffineModel(), mask=mask)
        assert 0 < mosaic.coverage < 0.1

    def test_averaging_blends_overlap(self):
        mosaic = Mosaic(width=20, height=10)
        a = np.full((10, 20), 100.0)
        b = np.full((10, 20), 200.0)
        mosaic.accumulate(a, AffineModel())
        mosaic.accumulate(b, AffineModel())
        out = mosaic.composite()
        covered = out[out > 0]
        assert np.allclose(covered, 150.0)


class TestValidation:
    def test_dimensions_checked(self):
        with pytest.raises(ValueError):
            Mosaic(width=0, height=10)

    def test_reconstruction_error_empty(self):
        mosaic = Mosaic(width=10, height=10)
        assert mosaic.reconstruction_error(np.zeros((10, 10))) == \
            float("inf")

    def test_composite_background(self):
        mosaic = Mosaic(width=4, height=4)
        out = mosaic.composite(background=9.0)
        assert (out == 9.0).all()
