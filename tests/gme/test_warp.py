"""Warping and pyramid helpers."""

import numpy as np
import pytest

from repro.gme import (AffineModel, TranslationalModel, decimate2,
                       pyramid_shapes, sad, warp_luma)


def ramp(height=12, width=16):
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    return xs * 3 + ys * 5


class TestWarpLuma:
    def test_identity_preserves_interior(self):
        luma = ramp()
        warped, valid = warp_luma(luma, AffineModel())
        assert np.allclose(warped[valid], luma[valid])
        assert valid[:-1, :-1].all()

    def test_integer_translation_shifts(self):
        luma = ramp()
        warped, valid = warp_luma(luma, TranslationalModel(2, 1))
        # Output (x, y) holds input (x+2, y+1).
        assert warped[0, 0] == luma[1, 2]
        assert warped[5, 5] == luma[6, 7]
        height, width = luma.shape
        assert valid[:height - 2, :width - 3].all()
        assert not valid[:, width - 2:].any()

    def test_subpixel_translation_interpolates_linear_ramp(self):
        """A linear ramp is reproduced exactly by bilinear sampling."""
        luma = ramp()
        warped, valid = warp_luma(luma, TranslationalModel(0.5, 0.25))
        expected = luma + 0.5 * 3 + 0.25 * 5
        assert np.allclose(warped[valid], expected[valid])

    def test_out_of_frame_marked_invalid_and_filled(self):
        luma = ramp()
        warped, valid = warp_luma(luma, TranslationalModel(100, 0),
                                  fill=7.0)
        assert not valid.any()
        assert (warped == 7.0).all()

    def test_output_shape_override(self):
        luma = ramp(20, 30)
        warped, valid = warp_luma(luma, TranslationalModel(3, 2),
                                  output_shape=(4, 5))
        assert warped.shape == (4, 5)
        assert warped[0, 0] == luma[2, 3]

    def test_affine_zoom(self):
        luma = ramp()
        warped, valid = warp_luma(luma, AffineModel(a=2.0, d=2.0))
        assert warped[2, 3] == pytest.approx(luma[4, 6])


class TestPyramidHelpers:
    def test_decimate2(self):
        luma = ramp(8, 8)
        half = decimate2(luma)
        assert half.shape == (4, 4)
        assert half[1, 1] == luma[2, 2]

    def test_pyramid_shapes(self):
        shapes = pyramid_shapes(288, 352, 3)
        assert shapes == [(288, 352), (144, 176), (72, 88)]

    def test_pyramid_shapes_rounds_up(self):
        assert pyramid_shapes(9, 9, 2)[1] == (5, 5)


class TestSad:
    def test_zero_on_identical(self):
        luma = ramp()
        assert sad(luma, luma) == 0.0

    def test_masked(self):
        a = np.zeros((4, 4))
        b = np.ones((4, 4))
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, :2] = True
        assert sad(a, b, mask) == 2.0
