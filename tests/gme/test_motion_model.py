"""Parametric motion models: algebra and coordinate semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gme import AffineModel, TranslationalModel, identity_like

finite = st.floats(-50, 50, allow_nan=False)
small = st.floats(-0.2, 0.2, allow_nan=False)


def affine_models():
    return st.builds(AffineModel,
                     a=st.floats(0.8, 1.2), b=small, tx=finite,
                     c=small, d=st.floats(0.8, 1.2), ty=finite)


class TestTranslational:
    def test_apply(self):
        model = TranslationalModel(2.5, -1.0)
        xs, ys = model.apply(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert xs.tolist() == [2.5, 3.5]
        assert ys.tolist() == [-1.0, 0.0]

    @given(a=finite, b=finite, c=finite, d=finite)
    def test_compose_adds(self, a, b, c, d):
        m = TranslationalModel(a, b).compose(TranslationalModel(c, d))
        assert m.tx == pytest.approx(a + c)
        assert m.ty == pytest.approx(b + d)

    @given(a=finite, b=finite)
    def test_inverse_cancels(self, a, b):
        m = TranslationalModel(a, b)
        identity = m.compose(m.inverse())
        assert identity.tx == pytest.approx(0)
        assert identity.ty == pytest.approx(0)

    def test_scaled(self):
        assert TranslationalModel(4, 2).scaled(0.5) == \
            TranslationalModel(2, 1)

    def test_to_affine(self):
        affine = TranslationalModel(3, 4).to_affine()
        assert (affine.tx, affine.ty) == (3, 4)
        assert (affine.a, affine.d) == (1.0, 1.0)


class TestAffine:
    def test_identity_is_noop(self):
        xs = np.array([1.0, 2.0])
        ys = np.array([3.0, 4.0])
        ax, ay = AffineModel().apply(xs, ys)
        assert np.allclose(ax, xs) and np.allclose(ay, ys)

    def test_matrix_roundtrip(self):
        model = AffineModel(1.1, 0.1, 5, -0.1, 0.9, -3)
        assert AffineModel.from_matrix(model.matrix) == model

    def test_from_matrix_shape_check(self):
        with pytest.raises(ValueError):
            AffineModel.from_matrix(np.eye(2))

    @given(affine_models(), affine_models())
    @settings(max_examples=30, deadline=None)
    def test_compose_is_function_composition(self, f, g):
        xs = np.array([0.0, 3.0, -2.0])
        ys = np.array([1.0, -1.0, 4.0])
        gx, gy = g.apply(xs, ys)
        fx_direct, fy_direct = f.apply(gx, gy)
        fx, fy = f.compose(g).apply(xs, ys)
        assert np.allclose(fx, fx_direct, atol=1e-8)
        assert np.allclose(fy, fy_direct, atol=1e-8)

    @given(affine_models())
    @settings(max_examples=30, deadline=None)
    def test_inverse_property(self, model):
        xs = np.array([0.0, 5.0])
        ys = np.array([2.0, -3.0])
        mx, my = model.apply(xs, ys)
        bx, by = model.inverse().apply(mx, my)
        assert np.allclose(bx, xs, atol=1e-6)
        assert np.allclose(by, ys, atol=1e-6)

    def test_scaled_moves_translation_only(self):
        model = AffineModel(1.05, 0.02, 8.0, -0.02, 0.95, -4.0)
        scaled = model.scaled(0.5)
        assert scaled.tx == 4.0 and scaled.ty == -2.0
        assert scaled.a == model.a and scaled.b == model.b

    def test_scaled_commutes_with_coordinate_scaling(self):
        """model at level L applied to halved coords == halved result of
        the finest-level model (the pyramid consistency requirement)."""
        model = AffineModel(1.02, 0.01, 6.0, -0.01, 0.98, 2.0)
        xs = np.array([10.0, 20.0])
        ys = np.array([4.0, 8.0])
        fx, fy = model.apply(xs, ys)
        cx, cy = model.scaled(0.5).apply(xs / 2, ys / 2)
        assert np.allclose(cx, fx / 2) and np.allclose(cy, fy / 2)

    def test_with_update(self):
        model = AffineModel().with_update(
            np.array([0.1, 0.0, 2.0, 0.0, -0.1, 3.0]))
        assert model.a == pytest.approx(1.1)
        assert model.tx == 2.0
        assert model.d == pytest.approx(0.9)

    def test_translation_property(self):
        assert AffineModel(tx=7, ty=8).translation == (7, 8)


class TestIdentityLike:
    def test_per_class(self):
        assert identity_like(TranslationalModel(1, 2)) == \
            TranslationalModel()
        assert identity_like(AffineModel(tx=5)) == AffineModel()

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            identity_like("not a model")


class TestPerspective:
    def test_identity_is_noop(self):
        from repro.gme import PerspectiveModel
        xs = np.array([1.0, 5.0])
        ys = np.array([2.0, -3.0])
        px, py = PerspectiveModel().apply(xs, ys)
        assert np.allclose(px, xs) and np.allclose(py, ys)

    def test_reduces_to_affine_without_perspective_terms(self):
        from repro.gme import PerspectiveModel
        affine = AffineModel(1.1, 0.05, 3.0, -0.05, 0.9, -2.0)
        persp = PerspectiveModel.from_affine(affine)
        assert persp.is_affine
        xs = np.array([0.0, 7.0, -4.0])
        ys = np.array([1.0, -2.0, 5.0])
        assert np.allclose(persp.apply(xs, ys), affine.apply(xs, ys))
        assert persp.to_affine() == affine

    def test_perspective_terms_bend_parallels(self):
        from repro.gme import PerspectiveModel
        model = PerspectiveModel(px=0.01)
        xs = np.array([0.0, 10.0])
        ys = np.array([0.0, 0.0])
        mx, _ = model.apply(xs, ys)
        # x = 10 compresses: 10 / (1 + 0.1).
        assert mx[1] == pytest.approx(10.0 / 1.1)

    def test_compose_matches_function_composition(self):
        from repro.gme import PerspectiveModel
        f = PerspectiveModel(a=1.05, tx=2.0, px=0.002)
        g = PerspectiveModel(d=0.95, ty=-1.0, py=-0.001)
        xs = np.array([3.0, -2.0, 8.0])
        ys = np.array([1.0, 4.0, -5.0])
        gx, gy = g.apply(xs, ys)
        direct = f.apply(gx, gy)
        composed = f.compose(g).apply(xs, ys)
        assert np.allclose(composed[0], direct[0], atol=1e-9)
        assert np.allclose(composed[1], direct[1], atol=1e-9)

    def test_inverse_cancels(self):
        from repro.gme import PerspectiveModel
        model = PerspectiveModel(a=1.1, b=0.02, tx=5.0, c=-0.01,
                                 d=0.93, ty=2.0, px=0.001, py=-0.002)
        xs = np.array([2.0, 30.0])
        ys = np.array([7.0, -11.0])
        mx, my = model.apply(xs, ys)
        bx, by = model.inverse().apply(mx, my)
        assert np.allclose(bx, xs, atol=1e-8)
        assert np.allclose(by, ys, atol=1e-8)

    def test_matrix_normalisation(self):
        from repro.gme import PerspectiveModel
        model = PerspectiveModel(tx=4.0, px=0.003)
        rebuilt = PerspectiveModel.from_matrix(model.matrix * 2.5)
        assert rebuilt.tx == pytest.approx(4.0)
        assert rebuilt.px == pytest.approx(0.003)

    def test_degenerate_matrix_rejected(self):
        from repro.gme import PerspectiveModel
        bad = np.eye(3)
        bad[2, 2] = 0.0
        with pytest.raises(ValueError):
            PerspectiveModel.from_matrix(bad)

    def test_scaled_commutes_with_coordinate_scaling(self):
        from repro.gme import PerspectiveModel
        model = PerspectiveModel(a=1.02, tx=6.0, px=0.002, py=-0.001)
        xs = np.array([10.0, 24.0])
        ys = np.array([4.0, 16.0])
        fx, fy = model.apply(xs, ys)
        cx, cy = model.scaled(0.5).apply(xs / 2, ys / 2)
        assert np.allclose(cx, fx / 2)
        assert np.allclose(cy, fy / 2)

    def test_warp_accepts_perspective(self):
        from repro.gme import PerspectiveModel, warp_luma
        luma = np.tile(np.arange(32.0), (24, 1))
        warped, valid = warp_luma(luma, PerspectiveModel(px=0.002))
        assert valid.any()
        # Column positions compress towards the right: the sampled value
        # at (x=20, y=0) equals 20 / (1 + 0.04).
        assert warped[0, 20] == pytest.approx(20.0 / 1.04, abs=1e-6)

    def test_identity_like_perspective(self):
        from repro.gme import PerspectiveModel, identity_like
        assert identity_like(PerspectiveModel(px=0.1)) == \
            PerspectiveModel()
