"""GME with the pipelined call scheduler: identical estimates.

Attaching a :class:`CallScheduler` to the estimator shards the per-pair
reference intra calls (Sobel per level, homogeneity mask) across engine
workers.  The estimate must be bit-identical to the unscheduled run --
same model parameters, same SAD trajectory, same blend mask -- because
the scheduler executes the very same vector ops.
"""

import numpy as np

from repro.addresslib import AddressLib, AddressingMode
from repro.gme import GlobalMotionEstimator, GmeSettings, TranslationalModel
from repro.host import CallScheduler
from repro.image import ImageFormat, frame_from_luma, textured_panorama
from repro.gme import AffineModel, warp_luma

FMT = ImageFormat("G96", 96, 96)


def _frame_pair(tx=3.0, ty=-2.0, seed=9):
    pano = textured_panorama(FMT.width * 3, FMT.height * 3, seed=seed)
    base = AffineModel(tx=FMT.width, ty=FMT.height)
    ref_luma, _ = warp_luma(pano, base,
                            output_shape=(FMT.height, FMT.width))
    pair = TranslationalModel(tx, ty).to_affine()
    cur_pose = base.compose(pair)
    cur_luma, _ = warp_luma(pano, cur_pose,
                            output_shape=(FMT.height, FMT.width))
    return frame_from_luma(FMT, ref_luma), frame_from_luma(FMT, cur_luma)


def _estimate(ref, cur, scheduler=None):
    lib = AddressLib()
    estimator = GlobalMotionEstimator(lib, GmeSettings(),
                                      scheduler=scheduler)
    ref_pyr = estimator.build_pyramid(ref)
    cur_pyr = estimator.build_pyramid(cur)
    return estimator.estimate_pair(ref_pyr, cur_pyr), lib


class TestScheduledEstimation:
    def test_scheduled_estimate_identical_to_serial(self):
        ref, cur = _frame_pair()
        serial, serial_lib = _estimate(ref, cur)
        with CallScheduler(max_workers=2) as sched:
            scheduled, sched_lib = _estimate(ref, cur, scheduler=sched)
        assert np.array_equal(scheduled.model.parameters,
                              serial.model.parameters)
        assert scheduled.final_sad == serial.final_sad
        assert scheduled.iterations == serial.iterations
        assert (scheduled.per_level_iterations
                == serial.per_level_iterations)
        assert np.array_equal(scheduled.blend_mask, serial.blend_mask)
        # The scheduler saw the per-pair intra batch (2 Sobel per level
        # plus the homogeneity mask).
        levels = GmeSettings().levels
        assert sched.total.calls == 2 * levels + 1

    def test_call_mix_unchanged_by_batching(self):
        ref, cur = _frame_pair(seed=21)
        _, serial_lib = _estimate(ref, cur)
        with CallScheduler(max_workers=2) as sched:
            _, sched_lib = _estimate(ref, cur, scheduler=sched)
        assert (serial_lib.log.count(AddressingMode.INTRA)
                == sched_lib.log.count(AddressingMode.INTRA))
        assert (serial_lib.log.count(AddressingMode.INTER)
                == sched_lib.log.count(AddressingMode.INTER))
