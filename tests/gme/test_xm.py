"""The XM application shell and the Table 3 dual-platform evaluation."""

import pytest

from repro.gme import (GmeApplication, SINGAPORE, SyntheticSequence,
                       Table3Row, XmCosts, evaluate_sequence_dual,
                       xm_cost_model)
from repro.host import software_platform


def short_sequence(frames=6):
    return SyntheticSequence(SINGAPORE, frames_override=frames)


class TestApplicationRun:
    def test_run_sequence_books(self):
        runtime = software_platform()
        app = GmeApplication(runtime)
        result = app.run_sequence(short_sequence())
        pairs = result.frames - 1
        assert result.intra_calls == 2 * result.frames + 7 * pairs
        assert result.inter_calls == result.total_iterations
        assert result.call_seconds > 0
        assert result.high_level_seconds > 0
        assert len(result.estimates) == pairs
        assert len(result.global_models) == result.frames

    def test_tracks_ground_truth(self):
        runtime = software_platform()
        result = GmeApplication(runtime).run_sequence(short_sequence())
        assert result.mean_translation_error < 0.25

    def test_global_models_compose(self):
        """The composed chain equals the sum of pair translations for a
        linear pan."""
        runtime = software_platform()
        seq = short_sequence()
        result = GmeApplication(runtime).run_sequence(seq)
        last = result.global_models[-1]
        truth = 1.9 * (seq.frames - 1)   # Singapore pan speed
        assert last.tx == pytest.approx(truth, rel=0.05)

    def test_mosaic_built_when_requested(self):
        runtime = software_platform()
        app = GmeApplication(runtime, build_mosaic=True,
                             mosaic_shape=(320, 400))
        result = app.run_sequence(short_sequence(4))
        assert result.mosaic is not None
        assert result.mosaic.frames_accumulated == 4
        assert result.mosaic.coverage > 0.5

    def test_decode_costs_charged_per_frame(self):
        costs = XmCosts(decode_instructions_per_frame=1e9,
                        control_instructions_per_frame=0)
        runtime = software_platform()
        result = GmeApplication(runtime, costs=costs).run_sequence(
            short_sequence(3))
        # 3 frames x 1e9 instructions at CPI 1.5 on 1.6 GHz.
        assert result.high_level_seconds > 3 * 1e9 / 1.6e9


class TestXmCostModel:
    def test_per_access_overhead_is_expensive(self):
        model = xm_cost_model()
        assert model.per_access_overhead.total > 100

    def test_heavier_than_addresslib_c(self):
        from repro.addresslib import INTRA_GRAD, SoftwareCostModel
        from repro.image import CIF
        xm = xm_cost_model().intra_profile(INTRA_GRAD, CIF)
        c = SoftwareCostModel().intra_profile(INTRA_GRAD, CIF)
        assert xm.total_instructions > 10 * c.total_instructions


class TestTable3Row:
    def test_speedup(self):
        row = Table3Row("x", 10, 10, pm_seconds=100, fpga_seconds=20,
                        intra_calls=5, inter_calls=3)
        assert row.speedup == 5.0

    def test_extrapolation_scales_linearly(self):
        row = Table3Row("x", frames_run=11, frames_full=101,
                        pm_seconds=10, fpga_seconds=2,
                        intra_calls=100, inter_calls=70)
        full = row.extrapolated()
        assert full.scale_factor == 1.0
        assert full.pm_seconds == pytest.approx(100.0)
        assert full.intra_calls == 1000
        assert full.speedup == pytest.approx(row.speedup)


class TestDualEvaluation:
    def test_dual_run_shape(self):
        row = evaluate_sequence_dual(SINGAPORE, scale=0.012)
        assert row.name == "Singapore"
        assert row.frames_full == SINGAPORE.frames
        assert row.pm_seconds > row.fpga_seconds  # the headline direction
        assert row.intra_calls > row.inter_calls

    def test_speedup_in_paper_band(self):
        """Table 3 reports factors of 4.3-5.3 ('an average factor of 5');
        the model must land in that neighbourhood."""
        row = evaluate_sequence_dual(SINGAPORE, scale=0.02)
        assert 3.0 < row.speedup < 6.5
