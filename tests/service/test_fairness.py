"""Tenant fairness: WFQ drain order, quotas, SLO books, policy shims.

The tenancy redesign must change *scheduling*, never *results*: the
weighted-fair queue interleaves tenants by policy weight inside each
priority class (collapsing to exact FIFO for untagged work), quotas
shed with an explicit ``TENANT_QUOTA`` reason, the shedding books
balance per tenant, and the whole 0xFA57 corpus stays bit-exact with
fairness enabled.  The ``ServicePolicy`` object is the one legal
spelling of the knobs; every legacy constructor keyword still works
but warns exactly once.
"""

import asyncio
import random
import warnings

import pytest

from repro.addresslib import (BatchCall, INTER_OPS, INTRA_OPS,
                              VectorExecutor)
from repro.aio import AsyncEngineClient
from repro.api import (AdmissionPolicy, EngineService, Priority,
                       RequestState, ServiceError, ServicePolicy,
                       SubmitOptions, TenantPolicy)
from repro.image import ImageFormat, noise_frame
from repro.service import (AdmissionController, MicroBatcher,
                           RejectReason, RequestQueue)
from repro.service.request import ServiceRequest

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

FMT = ImageFormat("T16", 16, 16)


def _request(request_id, tenant=None, priority=Priority.STANDARD,
             deadline_seconds=None, op_index=0):
    return ServiceRequest(
        request_id=request_id,
        call=BatchCall.intra(_INTRA[op_index],
                             noise_frame(FMT, seed=request_id % 8)),
        priority=priority, arrival_seconds=0.0,
        deadline_seconds=deadline_seconds, tenant=tenant)


def _drain_ids(queue):
    order = []
    while queue:
        order.append(queue.pop_next().request_id)
    return order


class TestWeightedFairQueue:
    def test_equal_weights_interleave_one_for_one(self):
        """Tenant a's burst of 4 then b's burst of 4 drain a,b,a,b...
        -- arrival clumping never converts into drain clumping."""
        queue = RequestQueue(policy=ServicePolicy())
        for i in range(4):
            assert queue.offer(_request(i, tenant="a")) is None
        for i in range(4, 8):
            assert queue.offer(_request(i, tenant="b")) is None
        assert _drain_ids(queue) == [0, 4, 1, 5, 2, 6, 3, 7]

    def test_weighted_tenant_drains_proportionally(self):
        """Weight 2 drains two for weight 1's one (alternating
        offers, so virtual finish tags decide, not arrival order)."""
        policy = ServicePolicy(tenants={"heavy": TenantPolicy(weight=2.0),
                                        "light": TenantPolicy(weight=1.0)})
        queue = RequestQueue(policy=policy)
        for i in range(4):
            queue.offer(_request(2 * i, tenant="heavy"))
            queue.offer(_request(2 * i + 1, tenant="light"))
        # heavy tags: .5, 1, 1.5, 2; light tags: 1, 2, 3, 4.
        assert _drain_ids(queue) == [0, 1, 2, 4, 3, 6, 5, 7]

    def test_untagged_queue_is_exact_fifo(self):
        """No tenant labels -> one bucket -> the pre-tenancy order."""
        queue = RequestQueue(policy=ServicePolicy())
        for i in range(6):
            queue.offer(_request(i))
        assert _drain_ids(queue) == list(range(6))

    def test_fifo_within_tenant_within_class(self):
        """Inside one tenant the drain order is submission order even
        while another tenant interleaves."""
        queue = RequestQueue(policy=ServicePolicy())
        for i in range(9):
            queue.offer(_request(i, tenant="a" if i % 3 else "b"))
        order = _drain_ids(queue)
        a_order = [i for i in order if i % 3]
        b_order = [i for i in order if not i % 3]
        assert a_order == sorted(a_order)
        assert b_order == sorted(b_order)

    def test_priority_still_strict_across_classes(self):
        """WFQ runs *within* a class; INTERACTIVE still preempts."""
        queue = RequestQueue(policy=ServicePolicy())
        queue.offer(_request(0, tenant="a", priority=Priority.BULK))
        queue.offer(_request(1, tenant="b",
                             priority=Priority.INTERACTIVE))
        queue.offer(_request(2, tenant="a",
                             priority=Priority.STANDARD))
        assert _drain_ids(queue) == [1, 2, 0]

    def test_fair_queueing_off_restores_global_fifo(self):
        """``fair_queueing=False`` collapses every tenant into the
        single pre-tenancy bucket."""
        policy = ServicePolicy(
            tenants={"heavy": TenantPolicy(weight=9.0)},
            fair_queueing=False)
        queue = RequestQueue(policy=policy)
        for i, tenant in enumerate(("light", "heavy", "light",
                                    "heavy")):
            queue.offer(_request(i, tenant=tenant))
        assert _drain_ids(queue) == [0, 1, 2, 3]


class TestTenantQuotas:
    def test_max_queued_rejects_with_tenant_quota(self):
        policy = ServicePolicy(
            tenants={"hog": TenantPolicy(max_queued=2)})
        queue = RequestQueue(policy=policy)
        assert queue.offer(_request(0, tenant="hog")) is None
        assert queue.offer(_request(1, tenant="hog")) is None
        assert (queue.offer(_request(2, tenant="hog"))
                is RejectReason.TENANT_QUOTA)
        # Everyone else still has the whole remaining depth.
        assert queue.offer(_request(3, tenant="other")) is None
        assert queue.offer(_request(4)) is None

    def test_depth_bound_takes_precedence_over_quota(self):
        policy = ServicePolicy(
            queue_depth=1, tenants={"hog": TenantPolicy(max_queued=5)})
        queue = RequestQueue(policy=policy)
        assert queue.offer(_request(0, tenant="hog")) is None
        assert (queue.offer(_request(1, tenant="hog"))
                is RejectReason.QUEUE_FULL)

    def test_max_in_flight_sheds_at_submit(self):
        """The in-flight cap counts accepted-unresolved requests, so a
        closed-loop tenant is bounded even with queue space free."""
        service = EngineService(policy=ServicePolicy(
            tenants={"hog": TenantPolicy(max_in_flight=2)}))
        options = SubmitOptions(tenant="hog")
        call = BatchCall.intra(_INTRA[0], noise_frame(FMT, seed=1))
        tickets = [service.submit(call, options) for _ in range(4)]
        states = [t.state for t in tickets]
        assert states[:2] == [RequestState.QUEUED, RequestState.QUEUED]
        assert all(s is RequestState.REJECTED for s in states[2:])
        assert all(t.reject_reason is RejectReason.TENANT_QUOTA
                   for t in tickets[2:])
        report = service.drain()
        assert report.completed == 2
        # Completion released the in-flight slots: submit works again.
        assert service.submit(call, options).accepted

    def test_quota_sheds_land_in_tenant_books(self):
        service = EngineService(policy=ServicePolicy(
            tenants={"hog": TenantPolicy(max_queued=1)}))
        call = BatchCall.intra(_INTRA[0], noise_frame(FMT, seed=2))
        for _ in range(3):
            service.submit(call, SubmitOptions(tenant="hog"))
        report = service.drain()
        assert report.rejected_by_reason == {"tenant_quota": 2}
        assert report.sheds_by_tenant == {"hog": 2}
        assert report.to_dict()["sheds_by_tenant"] == {"hog": 2}


class TestShedsBook:
    def test_drain_zeroes_stale_sheds_tallies(self):
        """A drain with zero rejects and zero timeouts returns empty
        per-tenant sheds, whatever a caller poked into the books."""
        service = EngineService()
        service.report_data.sheds_by_tenant["ghost"] = 3
        report = service.drain()
        assert report.sheds_by_tenant == {}

    def test_real_sheds_survive_later_empty_drains(self):
        service = EngineService(policy=ServicePolicy(
            tenants={"hog": TenantPolicy(max_queued=1)}))
        call = BatchCall.intra(_INTRA[0], noise_frame(FMT, seed=3))
        service.submit(call, SubmitOptions(tenant="hog"))
        service.submit(call, SubmitOptions(tenant="hog"))
        service.drain()
        report = service.drain()  # nothing new: tallies must survive
        assert report.sheds_by_tenant == {"hog": 1}

    def test_deadline_expiry_tallies_as_tenant_shed(self):
        service = EngineService()
        call = BatchCall.intra(_INTRA[0], noise_frame(FMT, seed=4))
        service.submit(call, SubmitOptions(
            tenant="late", deadline_seconds=0.0))
        report = service.drain()
        assert report.timed_out == 1
        assert report.sheds_by_tenant == {"late": 1}


class TestDeadlineAwareBatching:
    def _queue_with_followers(self, policy):
        queue = RequestQueue(policy=policy)
        queue.offer(_request(0))                            # head
        queue.offer(_request(1))                            # undated
        queue.offer(_request(2, deadline_seconds=5.0))      # dated
        return queue

    def test_near_deadline_follower_rides_first(self):
        policy = ServicePolicy(max_batch=2)
        batcher = MicroBatcher(policy=policy)
        wave = batcher.form_wave(self._queue_with_followers(policy))
        assert [r.request_id for r in wave] == [0, 2]

    def test_preference_off_keeps_drain_order(self):
        policy = ServicePolicy(max_batch=2,
                               deadline_aware_batching=False)
        batcher = MicroBatcher(policy=policy)
        wave = batcher.form_wave(self._queue_with_followers(policy))
        assert [r.request_id for r in wave] == [0, 1]

    def test_dated_ties_keep_drain_order(self):
        """Equal deadlines sort stably: drain order breaks the tie."""
        policy = ServicePolicy(max_batch=3)
        queue = RequestQueue(policy=policy)
        for i in range(3):
            queue.offer(_request(i, deadline_seconds=5.0))
        wave = MicroBatcher(policy=policy).form_wave(queue)
        assert [r.request_id for r in wave] == [0, 1, 2]


class TestAsyncTenancy:
    def test_fifo_within_tenant_under_suspended_producers(self):
        """Three concurrent producers outrun a depth-4 queue (so all
        of them suspend); each tenant's completions still land in its
        own submission order."""
        total_each = 8

        async def run():
            service = EngineService(policy=ServicePolicy(
                queue_depth=4, max_batch=2,
                tenants={"a": TenantPolicy(weight=2.0),
                         "b": TenantPolicy(weight=1.0),
                         "c": TenantPolicy(weight=1.0)}))
            async with AsyncEngineClient(service) as client:
                tickets = {}

                async def produce(tenant):
                    tickets[tenant] = []
                    for seed in range(total_each):
                        tickets[tenant].append(await client.submit(
                            BatchCall.intra(_INTRA[0],
                                            noise_frame(FMT, seed=seed)),
                            SubmitOptions(tenant=tenant)))
                await asyncio.gather(*(produce(t) for t in "abc"))
                report = await client.drain()
                waits = client.backpressure_waits
            return tickets, report, waits

        tickets, report, waits = asyncio.run(run())
        assert report.completed == 3 * total_each
        assert waits > 0, "producers must actually have suspended"
        for tenant, batch in tickets.items():
            times = [t.ticket.completion_seconds for t in batch]
            assert times == sorted(times), (
                f"tenant {tenant!r} completed out of submission order")

    def test_quota_rejects_resolve_as_tickets(self):
        """A tenant at quota is shed explicitly through the facade --
        an already-resolved TENANT_QUOTA ticket, never a producer
        parked against capacity it may not take."""
        async def run():
            service = EngineService(policy=ServicePolicy(
                tenants={"hog": TenantPolicy(max_queued=1)}))
            async with AsyncEngineClient(service) as client:
                tickets = [await client.submit(
                    BatchCall.intra(_INTRA[0],
                                    noise_frame(FMT, seed=s)),
                    SubmitOptions(tenant="hog"))
                    for s in range(8)]
                rejected = [t for t in tickets
                            if t.ticket.state is RequestState.REJECTED]
                assert rejected, "expected tenant-quota rejections"
                for ticket in rejected:
                    assert (ticket.ticket.reject_reason
                            is RejectReason.TENANT_QUOTA)
                    assert ticket.done
                    with pytest.raises(ServiceError):
                        await ticket
                report = await client.drain()
            assert (report.completed
                    + report.rejected) == len(tickets)
            assert report.sheds_by_tenant == {
                "hog": report.rejected} if report.rejected else True

        asyncio.run(run())


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


class TestCorpusWithFairness:
    """The full 208-case corpus with tenant tags and WFQ enabled."""

    SHARDS = 8
    CASES_PER_SHARD = 26

    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_fair_queued_service_matches_serial_executor(self, shard):
        """Random tenants at unequal weights reorder dispatch;
        every result stays bit-exact with the serial executor."""
        rng = random.Random(0xFA57 + shard)
        calls = [_random_batch_call(rng)
                 for _ in range(self.CASES_PER_SHARD)]
        tenants = [rng.choice((None, "alpha", "beta", "gamma"))
                   for _ in calls]
        priorities = [rng.choice(list(Priority)) for _ in calls]
        service = EngineService(policy=ServicePolicy(
            queue_depth=len(calls),
            tenants={"alpha": TenantPolicy(weight=3.0),
                     "beta": TenantPolicy(weight=1.0),
                     "gamma": TenantPolicy(weight=0.5)}))
        tickets = [service.submit(call, SubmitOptions(
            priority=priority, tenant=tenant))
            for call, priority, tenant in zip(calls, priorities,
                                              tenants)]
        report = service.drain()
        assert report.completed == len(calls)
        assert report.rejected == 0 and report.timed_out == 0
        assert report.sheds_by_tenant == {}
        for call, ticket in zip(calls, tickets):
            _assert_same(ticket.result(), _serial_reference(call))


class TestPolicyObject:
    def test_modern_constructors_never_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            EngineService(policy=ServicePolicy())
            RequestQueue(policy=ServicePolicy(queue_depth=8))
            MicroBatcher(policy=ServicePolicy(max_batch=2))
            AdmissionController(policy=ServicePolicy())

    @pytest.mark.parametrize("build", [
        lambda: EngineService(queue_depth=8),
        lambda: EngineService(max_batch=2),
        lambda: EngineService(policy=AdmissionPolicy(0.05)),
        lambda: RequestQueue(max_depth=8),
        lambda: MicroBatcher(max_batch=2),
        lambda: AdmissionController(policy=AdmissionPolicy(0.05)),
    ])
    def test_legacy_spellings_warn_once(self, build):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            build()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "ServicePolicy" in str(deprecations[0].message)

    def test_mixing_policy_and_legacy_kwargs_raises(self):
        with pytest.raises(TypeError):
            EngineService(policy=ServicePolicy(), queue_depth=8)
        with pytest.raises(TypeError):
            RequestQueue(max_depth=4, policy=ServicePolicy())
        with pytest.raises(TypeError):
            MicroBatcher(max_batch=4, policy=ServicePolicy())

    def test_legacy_values_fold_into_the_policy(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            service = EngineService(queue_depth=5, max_batch=3,
                                    policy=AdmissionPolicy(0.07))
        assert service.policy.queue_depth == 5
        assert service.policy.max_batch == 3
        assert (service.policy.admission.deadline_budget_seconds
                == 0.07)
        assert service.queue.max_depth == 5
        assert service.batcher.max_batch == 3

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ServicePolicy(queue_depth=0)
        with pytest.raises(ValueError):
            ServicePolicy(max_batch=0)
        with pytest.raises(ValueError):
            TenantPolicy(weight=0.0)
        with pytest.raises(ValueError):
            TenantPolicy(max_queued=0)
        with pytest.raises(ValueError):
            TenantPolicy(p95_target_seconds=0.0)

    def test_unlisted_tenant_gets_the_default_policy(self):
        policy = ServicePolicy(
            tenants={"a": TenantPolicy(weight=2.0)},
            default_tenant=TenantPolicy(weight=0.5))
        assert policy.tenant("a").weight == 2.0
        assert policy.tenant("anyone").weight == 0.5
        assert policy.tenant(None).weight == 0.5
        assert policy.weight("a") == 2.0
        assert policy.weight("anyone") == 0.5
