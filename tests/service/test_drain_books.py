"""Drain-time book integrity: tenant tallies track completions.

Regression suite for the stale per-tenant-books bug: the dispatch loop
used to bump ``calls_by_tenant`` *before* the completion loop ran, so a
drain cycle that completed nothing could still show tenant tallies.
The tally now lives in ``_complete`` (one source of truth) and
``drain()`` zeroes the per-tenant books whenever total completions are
zero.
"""

from repro.addresslib import BatchCall, INTRA_OPS
from repro.api import EngineService, SubmitOptions
from repro.image import ImageFormat, noise_frame

FMT = ImageFormat("T16", 16, 16)
OP = INTRA_OPS["intra_grad"]


def _call(seed=1):
    return BatchCall.intra(OP, noise_frame(FMT, seed=seed))


class TestDrainZeroCompletions:
    def test_all_timeouts_leave_no_tenant_tallies(self):
        """A drain that completes nothing reports empty per-tenant
        books -- zero completions, zero tenant completions."""
        service = EngineService(queue_depth=8)
        for seed in range(4):
            # Zero deadline: every request expires at dispatch time.
            service.submit(_call(seed), SubmitOptions(
                tenant="doomed", deadline_seconds=0.0))
        report = service.drain()
        assert report.completed == 0
        assert report.timed_out == 4
        assert report.calls_by_tenant == {}

    def test_poked_stale_tallies_are_cleared(self):
        """Even tallies left behind by a meddling caller (or an old
        accounting bug) are wiped on a zero-completion drain."""
        service = EngineService(queue_depth=8)
        service.report_data.calls_by_tenant["ghost"] = 7
        report = service.drain()
        assert report.completed == 0
        assert report.calls_by_tenant == {}

    def test_rejects_never_tally_tenants(self):
        service = EngineService(queue_depth=1)
        service.submit(_call(0), SubmitOptions(tenant="a",
                                               deadline_seconds=0.0))
        # Queue full: rejected at offer, must not touch tenant books.
        ticket = service.submit(_call(1), SubmitOptions(tenant="b"))
        assert not ticket.accepted
        report = service.drain()
        assert report.completed == 0
        assert report.calls_by_tenant == {}


class TestTenantTalliesTrackCompletions:
    def test_tallies_sum_to_completed(self):
        """Mixed outcomes: the tenant books sum exactly to the
        completion count, with expired work absent."""
        service = EngineService(queue_depth=16)
        for seed in range(3):
            service.submit(_call(seed), SubmitOptions(tenant="ok"))
        for seed in range(2):
            service.submit(_call(10 + seed), SubmitOptions(
                tenant="late", deadline_seconds=0.0))
        report = service.drain()
        assert report.completed == 3
        assert report.timed_out == 2
        assert report.calls_by_tenant == {"ok": 3}
        assert sum(report.calls_by_tenant.values()) == report.completed

    def test_tallies_survive_a_later_empty_drain(self):
        """A second drain with nothing queued must not wipe the books
        of the completions the first drain recorded."""
        service = EngineService(queue_depth=8)
        service.submit(_call(5), SubmitOptions(tenant="kept"))
        first = service.drain()
        assert first.calls_by_tenant == {"kept": 1}
        second = service.drain()
        assert second.calls_by_tenant == {"kept": 1}
