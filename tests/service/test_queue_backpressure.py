"""RequestQueue at depth: reject stability, FIFO, and the wake path.

The bounded queue is the backpressure primitive both front ends build
on: the synchronous path needs the full-queue reject reason to be
stable (``QUEUE_FULL``, every time, no matter how often it is hit),
and the asyncio facade needs the space-listener wake path to fire on
exactly the full-to-space transitions.  FIFO-within-priority must hold
under concurrent producers racing through backpressure suspensions.
"""

import asyncio

from repro.addresslib import BatchCall, INTRA_OPS
from repro.aio import AsyncEngineClient
from repro.api import EngineService, Priority, RejectReason, SubmitOptions
from repro.image import ImageFormat, noise_frame
from repro.service.queue import RequestQueue
from repro.service.request import ServiceRequest

FMT = ImageFormat("T16", 16, 16)
OP = INTRA_OPS["intra_grad"]


def _request(request_id, priority=Priority.STANDARD):
    call = BatchCall.intra(OP, noise_frame(FMT, seed=request_id))
    return ServiceRequest(request_id=request_id, call=call,
                          priority=priority, arrival_seconds=0.0,
                          deadline_seconds=None)


class TestRejectStability:
    def test_full_queue_rejects_queue_full_every_time(self):
        """The marginal offer's reason is stable across repeated hits
        and across fill/drain cycles -- clients key retry policy on
        it."""
        queue = RequestQueue(max_depth=2)
        assert queue.offer(_request(0)) is None
        assert queue.offer(_request(1)) is None
        for attempt in range(5):
            assert queue.offer(_request(10 + attempt)) is (
                RejectReason.QUEUE_FULL)
        queue.pop_next()
        assert queue.offer(_request(20)) is None
        assert queue.offer(_request(21)) is RejectReason.QUEUE_FULL

    def test_has_space_tracks_depth(self):
        queue = RequestQueue(max_depth=2)
        assert queue.has_space
        queue.offer(_request(0))
        assert queue.has_space
        queue.offer(_request(1))
        assert not queue.has_space
        queue.pop_next()
        assert queue.has_space


class TestSpaceListeners:
    def test_fires_only_on_full_to_space_transition(self):
        """Pops below the bound are silent; the pop that reopens a
        full queue wakes every registered listener once."""
        queue = RequestQueue(max_depth=2)
        fired = []
        queue.add_space_listener(lambda: fired.append("a"))
        queue.add_space_listener(lambda: fired.append("b"))
        queue.offer(_request(0))
        queue.pop_next()
        assert fired == []  # never was full
        queue.offer(_request(1))
        queue.offer(_request(2))
        queue.pop_next()
        assert fired == ["a", "b"]  # full -> space: both woken once
        queue.pop_next()
        assert fired == ["a", "b"]  # already had space: silent

    def test_pop_compatible_fires_once_for_a_batch(self):
        queue = RequestQueue(max_depth=3)
        fired = []
        queue.add_space_listener(lambda: fired.append(1))
        for request_id in range(3):
            queue.offer(_request(request_id))
        popped = queue.pop_compatible(lambda r: True, limit=3)
        assert len(popped) == 3
        assert fired == [1]

    def test_remove_listener_and_unknown_removal(self):
        queue = RequestQueue(max_depth=1)
        fired = []
        listener = lambda: fired.append(1)  # noqa: E731
        queue.add_space_listener(listener)
        queue.remove_space_listener(listener)
        queue.remove_space_listener(listener)  # unknown: no-op
        queue.offer(_request(0))
        queue.pop_next()
        assert fired == []


class TestFifoUnderConcurrentProducers:
    def test_fifo_within_priority_across_backpressure(self):
        """Two producer tasks race through a depth-2 queue; within
        each producer's priority class, completions keep submission
        order -- backpressure wake order must never reorder a class."""
        per_producer = 10

        async def run():
            service = EngineService(queue_depth=2, max_batch=1)
            completion_order = {"hi": [], "lo": []}
            notes = []
            async with AsyncEngineClient(service) as client:

                async def produce(label, priority):
                    for n in range(per_producer):
                        ticket = await client.submit(
                            BatchCall.intra(OP, noise_frame(
                                FMT, seed=n)),
                            SubmitOptions(priority=priority,
                                          tenant=label))
                        async def note(t=ticket, label=label, n=n):
                            await t.wait()
                            completion_order[label].append(n)
                        notes.append(asyncio.ensure_future(note()))

                await asyncio.gather(
                    produce("hi", Priority.INTERACTIVE),
                    produce("lo", Priority.BULK))
                report = await client.drain()
                await asyncio.gather(*notes)
            return completion_order, report

        order, report = asyncio.run(run())
        assert report.completed == 2 * per_producer
        assert report.rejected == 0
        assert order["hi"] == sorted(order["hi"])
        assert order["lo"] == sorted(order["lo"])
