"""Backpressure: bounded queue, modeled-backlog shedding, priorities."""

import pytest

from repro.addresslib import (AddressLib, BatchCall, INTRA_BOX3,
                              INTRA_GRAD)
from repro.host import EngineBackend
from repro.image import ImageFormat, noise_frame
from repro.service import (AdmissionPolicy, EngineService, Priority,
                           RejectReason, RequestState, ServiceError)

QCIF = ImageFormat("QCIF", 176, 144)


def _frame(seed=1):
    return noise_frame(QCIF, seed=seed)


def _call(op=INTRA_GRAD, seed=1):
    return BatchCall.intra(op, _frame(seed))


class TestQueueFull:
    def test_depth_bound_rejects_with_reason(self):
        service = EngineService(queue_depth=2)
        accepted = [service.submit(_call()) for _ in range(2)]
        spilled = service.submit(_call())
        assert all(t.accepted for t in accepted)
        assert spilled.state is RequestState.REJECTED
        assert spilled.reject_reason is RejectReason.QUEUE_FULL
        assert spilled.done
        report = service.drain()
        assert report.rejected_by_reason == {"queue_full": 1}
        assert report.completed == 2

    def test_rejection_is_explicit_not_an_exception(self):
        service = EngineService(queue_depth=1)
        service.submit(_call())
        ticket = service.submit(_call())  # must not raise
        with pytest.raises(ServiceError):
            ticket.result()

    def test_draining_frees_depth(self):
        service = EngineService(queue_depth=1)
        first = service.submit(_call(seed=2))
        service.drain()
        second = service.submit(_call(seed=3))
        assert first.accepted and second.accepted
        service.drain()
        assert second.state is RequestState.COMPLETED


class TestOverloadShedding:
    def test_backlog_over_budget_sheds(self):
        cost = EngineService().admission.price(_call())[1]
        service = EngineService(
            policy=AdmissionPolicy(deadline_budget_seconds=cost * 1.5))
        tickets = [service.submit(_call()) for _ in range(4)]
        # Backlogs at admission: 0, c, 2c, ... -- budget 1.5c admits two.
        assert [t.accepted for t in tickets] == [True, True, False,
                                                 False]
        assert tickets[2].reject_reason is RejectReason.OVERLOAD
        report = service.drain()
        assert report.rejected_by_reason["overload"] == 2
        assert report.completed == 2
        assert report.reject_rate == pytest.approx(0.5)

    def test_no_policy_never_sheds(self):
        service = EngineService(queue_depth=256)
        tickets = [service.submit(_call()) for _ in range(64)]
        assert all(t.accepted for t in tickets)

    def test_draining_restores_admission(self):
        cost = EngineService().admission.price(_call())[1]
        service = EngineService(
            policy=AdmissionPolicy(deadline_budget_seconds=cost / 2))
        assert service.submit(_call()).accepted
        assert not service.submit(_call()).accepted
        service.drain()
        # The engine stays busy until the wave's modeled end; once the
        # clock has caught up the backlog is gone and admission reopens.
        assert service.submit(_call()).accepted

    def test_shed_requests_never_execute(self):
        lib = AddressLib(EngineBackend())
        cost = EngineService().admission.price(_call())[1]
        service = EngineService(
            lib=lib,
            policy=AdmissionPolicy(deadline_budget_seconds=cost / 2))
        service.submit(_call())
        service.submit(_call())
        service.drain()
        assert lib.backend.driver.calls_submitted == 1
        assert lib.backend.driver.calls_shed == 1


class TestGraduatedBudgets:
    def test_bulk_sheds_before_interactive(self):
        """At the same backlog, BULK is over its (half) budget while
        INTERACTIVE still fits its full one."""
        cost = EngineService().admission.price(_call())[1]
        service = EngineService(
            policy=AdmissionPolicy(deadline_budget_seconds=cost * 1.4))
        service.submit(_call())  # backlog now ~1c for both below
        bulk = service.submit(_call(), priority=Priority.BULK)
        interactive = service.submit(_call(seed=4),
                                     priority=Priority.INTERACTIVE)
        assert bulk.reject_reason is RejectReason.OVERLOAD
        assert interactive.accepted

    def test_budget_fractions_are_configurable(self):
        cost = EngineService().admission.price(_call())[1]
        policy = AdmissionPolicy(
            deadline_budget_seconds=cost * 1.4,
            budget_fractions={Priority.BULK: 1.0})
        service = EngineService(policy=policy)
        service.submit(_call())
        assert service.submit(_call(),
                              priority=Priority.BULK).accepted


class TestPriorityDispatch:
    def test_interactive_overtakes_earlier_bulk(self):
        """Strict priority: a later INTERACTIVE request completes at an
        earlier modeled time than an earlier BULK one."""
        service = EngineService()
        bulk = service.submit(_call(op=INTRA_BOX3),
                              priority=Priority.BULK)
        interactive = service.submit(_call(op=INTRA_GRAD),
                                     priority=Priority.INTERACTIVE)
        service.drain()
        assert (interactive.completion_seconds
                < bulk.completion_seconds)

    def test_fifo_within_class(self):
        service = EngineService(max_batch=1)
        first = service.submit(_call(seed=5))
        second = service.submit(_call(seed=6))
        service.drain()
        assert first.completion_seconds <= second.completion_seconds


class TestReportBooks:
    def test_counters_balance(self):
        cost = EngineService().admission.price(_call())[1]
        service = EngineService(
            queue_depth=3,
            policy=AdmissionPolicy(deadline_budget_seconds=cost * 2.5))
        tickets = [service.submit(_call()) for _ in range(6)]
        report = service.drain()
        assert report.submitted == 6
        assert report.accepted == report.completed
        assert report.accepted + report.rejected == report.submitted
        assert report.in_flight == 0
        assert report.queue_high_water <= 3
        states = [t.state for t in tickets]
        assert states.count(RequestState.COMPLETED) == report.completed
        assert states.count(RequestState.REJECTED) == report.rejected

    def test_latency_books_only_completed(self):
        service = EngineService(queue_depth=1)
        service.submit(_call())
        service.submit(_call())  # rejected
        report = service.drain()
        assert report.latency.count == report.completed == 1
        assert report.latency.p95 > 0.0
