"""Unit tests: the bounded priority queue and the micro-batcher."""

import pytest

from repro.addresslib import (BatchCall, INTER_ABSDIFF, INTRA_BOX3,
                              INTRA_GRAD, threshold_op)
from repro.image import ImageFormat, noise_frame
from repro.service import (BatchKey, EngineService, MicroBatcher,
                           Priority, RejectReason, RequestQueue,
                           ServiceRequest)

QCIF = ImageFormat("QCIF", 176, 144)
CIF = ImageFormat("CIF", 352, 288)


def _request(request_id, call, priority=Priority.STANDARD):
    return ServiceRequest(request_id=request_id, call=call,
                          priority=priority, arrival_seconds=0.0,
                          deadline_seconds=None)


def _grad(seed=1, fmt=QCIF):
    return BatchCall.intra(INTRA_GRAD, noise_frame(fmt, seed=seed))


class TestBatchKey:
    def test_same_configuration_shares_a_key(self):
        # Different frame *content* is irrelevant: the key is the
        # engine configuration, not the data.
        assert BatchKey.of(_grad(seed=1)) == BatchKey.of(_grad(seed=2))

    def test_distinct_ops_formats_and_modes_split(self):
        frame = noise_frame(QCIF, seed=1)
        grad = BatchCall.intra(INTRA_GRAD, frame)
        box = BatchCall.intra(INTRA_BOX3, frame)
        cif = _grad(fmt=CIF)
        inter = BatchCall.inter(INTER_ABSDIFF, frame,
                                noise_frame(QCIF, seed=2))
        reduce_ = BatchCall.inter_reduce(INTER_ABSDIFF, frame,
                                         noise_frame(QCIF, seed=2))
        keys = {BatchKey.of(c) for c in (grad, box, cif, inter, reduce_)}
        assert len(keys) == 5

    def test_parameterized_ops_never_coalesce_by_name(self):
        # Two threshold_op(100) instances share a name but are distinct
        # objects: identical names must not merge distinct code.
        frame = noise_frame(QCIF, seed=1)
        a = BatchCall.intra(threshold_op(100), frame)
        b = BatchCall.intra(threshold_op(100), frame)
        assert BatchKey.of(a) != BatchKey.of(b)


class TestRequestQueue:
    def test_strict_priority_then_fifo(self):
        queue = RequestQueue()
        queue.offer(_request(0, _grad(), Priority.BULK))
        queue.offer(_request(1, _grad(), Priority.STANDARD))
        queue.offer(_request(2, _grad(), Priority.INTERACTIVE))
        queue.offer(_request(3, _grad(), Priority.INTERACTIVE))
        order = [queue.pop_next().request_id for _ in range(4)]
        assert order == [2, 3, 1, 0]

    def test_depth_bound_and_high_water(self):
        queue = RequestQueue(max_depth=2)
        assert queue.offer(_request(0, _grad())) is None
        assert queue.offer(_request(1, _grad())) is None
        assert (queue.offer(_request(2, _grad()))
                is RejectReason.QUEUE_FULL)
        assert len(queue) == 2 and queue.high_water == 2
        queue.pop_next()
        assert queue.offer(_request(3, _grad())) is None

    def test_requeue_front_overtakes_class(self):
        queue = RequestQueue()
        queue.offer(_request(0, _grad()))
        retried = _request(1, _grad())
        queue.requeue_front(retried)
        assert queue.pop_next().request_id == 1

    def test_pop_compatible_preserves_order_and_remainder(self):
        queue = RequestQueue()
        for i in range(5):
            queue.offer(_request(i, _grad()))
        evens = queue.pop_compatible(
            lambda r: r.request_id % 2 == 0, limit=2)
        assert [r.request_id for r in evens] == [0, 2]
        assert [r.request_id for r in queue] == [1, 3, 4]

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            RequestQueue(max_depth=0)


class TestMicroBatcher:
    def test_wave_coalesces_compatible_head_run(self):
        queue = RequestQueue()
        for i in range(3):
            queue.offer(_request(i, _grad(seed=i)))
        queue.offer(_request(3, BatchCall.intra(
            INTRA_BOX3, noise_frame(QCIF, seed=9))))
        batcher = MicroBatcher(max_batch=8)
        wave = batcher.form_wave(queue)
        assert [r.request_id for r in wave] == [0, 1, 2]
        assert batcher.coalesced_requests == 3
        assert [r.request_id for r in batcher.form_wave(queue)] == [3]
        assert batcher.waves == 2

    def test_max_batch_caps_the_wave(self):
        queue = RequestQueue()
        for i in range(5):
            queue.offer(_request(i, _grad(seed=i)))
        batcher = MicroBatcher(max_batch=2)
        assert len(batcher.form_wave(queue)) == 2
        assert len(queue) == 3

    def test_max_batch_one_disables_coalescing(self):
        queue = RequestQueue()
        for i in range(3):
            queue.offer(_request(i, _grad(seed=i)))
        batcher = MicroBatcher(max_batch=1)
        while queue:
            assert len(batcher.form_wave(queue)) == 1
        assert batcher.coalesced_requests == 0

    def test_lower_priority_joins_but_never_leads(self):
        """A compatible STANDARD request may ride an INTERACTIVE wave,
        but the head is always the strict-priority next request."""
        queue = RequestQueue()
        queue.offer(_request(0, _grad(seed=0), Priority.STANDARD))
        queue.offer(_request(1, BatchCall.intra(
            INTRA_BOX3, noise_frame(QCIF, seed=1)),
            Priority.INTERACTIVE))
        queue.offer(_request(2, BatchCall.intra(
            INTRA_BOX3, noise_frame(QCIF, seed=2)),
            Priority.STANDARD))
        batcher = MicroBatcher(max_batch=8)
        wave = batcher.form_wave(queue)
        # Head is the INTERACTIVE box call; the compatible STANDARD box
        # call joins it, overtaking the incompatible earlier grad.
        assert [r.request_id for r in wave] == [1, 2]
        assert [r.request_id for r in batcher.form_wave(queue)] == [0]

    def test_invalid_max_batch_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)


class TestServiceWiring:
    def test_report_mirrors_batcher_counters(self):
        service = EngineService(max_batch=4)
        for seed in range(6):
            service.submit(_grad(seed=seed))
        report = service.drain()
        assert report.waves == service.batcher.waves == 2
        assert (report.coalesced_requests
                == service.batcher.coalesced_requests == 6)
