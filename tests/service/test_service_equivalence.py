"""Service-vs-serial bit-exactness over the randomized corpus.

The service may admit, reorder (by priority), coalesce and shard
requests -- but each ticket's result must be *exactly* what a direct
serial ``AddressLib``/``VectorExecutor`` call on the same frames
produces.  Same 0xFA57 corpus recipe as the scheduler and fast-path
equivalence suites.
"""

import random

import pytest

from repro.addresslib import (AddressLib, BatchCall, INTER_OPS, INTRA_OPS,
                              SoftwareBackend, VectorExecutor)
from repro.host import CallScheduler, EngineBackend
from repro.image import ImageFormat, noise_frame
from repro.service import EngineService, Priority

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26

QCIF = ImageFormat("QCIF", 176, 144)


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


class TestCorpusEquivalence:
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_service_matches_serial_executor(self, shard):
        """Random priorities reorder dispatch; results never change."""
        rng = random.Random(0xFA57 + shard)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]
        priorities = [rng.choice(list(Priority)) for _ in calls]
        service = EngineService(queue_depth=len(calls))
        tickets = [service.submit(call, priority=priority)
                   for call, priority in zip(calls, priorities)]
        report = service.drain()
        assert report.completed == len(calls)
        assert report.rejected == 0 and report.timed_out == 0
        for call, ticket in zip(calls, tickets):
            _assert_same(ticket.result(), _serial_reference(call))

    def test_sharded_service_matches_serial_executor(self):
        """One shard again, waves sharded across scheduler workers."""
        rng = random.Random(0xFA57)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]
        with CallScheduler(max_workers=2) as sched:
            service = EngineService(scheduler=sched,
                                    queue_depth=len(calls))
            tickets = [service.submit(call) for call in calls]
            service.drain()
        for call, ticket in zip(calls, tickets):
            _assert_same(ticket.result(), _serial_reference(call))

    def test_engine_backend_service_matches_serial(self):
        """Engine-backed serving: same frames, driver books kept."""
        rng = random.Random(0xFA57 + 3)
        calls = [_random_batch_call(rng) for _ in range(12)]
        lib = AddressLib(EngineBackend())
        service = EngineService(lib=lib, queue_depth=len(calls))
        tickets = [service.submit(call) for call in calls]
        service.drain()
        for call, ticket in zip(calls, tickets):
            _assert_same(ticket.result(), _serial_reference(call))
        assert lib.backend.driver.calls_submitted == len(calls)
        assert lib.backend.driver.calls_shed == 0

    def test_priority_shuffle_is_result_invariant(self):
        """The same calls under two different priority assignments
        complete with identical per-ticket results."""
        rng = random.Random(0xFA57 + 7)
        calls = [_random_batch_call(rng) for _ in range(10)]
        outcomes = []
        for seed in (1, 2):
            prio_rng = random.Random(seed)
            service = EngineService(queue_depth=len(calls))
            tickets = [service.submit(
                call, priority=prio_rng.choice(list(Priority)))
                for call in calls]
            service.drain()
            outcomes.append([t.result() for t in tickets])
        for got, want in zip(*outcomes):
            _assert_same(got, want)


class TestModeledAccounting:
    def test_software_and_engine_backends_price_identically(self):
        """Admission prices from geometry alone: backend-independent."""
        rng = random.Random(0xFA57 + 11)
        calls = [_random_batch_call(rng) for _ in range(8)]
        soft = EngineService()
        hard = EngineService(lib=AddressLib(EngineBackend()))
        for call in calls:
            assert soft.admission.price(call)[1] == pytest.approx(
                hard.admission.price(call)[1], abs=0.0)

    def test_coalesced_wave_shares_modeled_engines(self):
        """Four identical calls on four modeled engines cost one call's
        makespan, and the books show the 4x overlap."""
        frame = noise_frame(QCIF, seed=21)
        op = _INTRA[0]
        service = EngineService(virtual_engines=4, max_batch=4)
        for _ in range(4):
            service.submit(BatchCall.intra(op, frame))
        report = service.drain()
        _, overlapped = service.admission.price(
            BatchCall.intra(op, frame))
        assert report.waves == 1
        assert report.coalesced_requests == 4
        assert report.busy_seconds == pytest.approx(overlapped)
        assert report.overlap_efficiency == pytest.approx(0.75, abs=0.02)
