"""Per-request deadlines: timeout at dispatch, bounded retry."""

import pytest

from repro.addresslib import (AddressLib, BatchCall, INTRA_BOX3,
                              INTRA_GRAD, VectorExecutor)
from repro.host import EngineBackend
from repro.image import ImageFormat, noise_frame
from repro.service import EngineService, RequestState, ServiceError

QCIF = ImageFormat("QCIF", 176, 144)


def _frame(seed=1):
    return noise_frame(QCIF, seed=seed)


class TestTimeout:
    def test_unmeetable_deadline_times_out(self):
        service = EngineService()
        cost = service.admission.price(
            BatchCall.intra(INTRA_GRAD, _frame()))[1]
        ticket = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                                deadline_seconds=cost / 2)
        report = service.drain()
        assert ticket.state is RequestState.TIMED_OUT
        assert ticket.attempts == 1
        assert report.timed_out == 1 and report.completed == 0
        with pytest.raises(ServiceError):
            ticket.result()

    def test_timed_out_work_is_never_executed(self):
        lib = AddressLib(EngineBackend())
        service = EngineService(lib=lib)
        cost = service.admission.price(
            BatchCall.intra(INTRA_GRAD, _frame()))[1]
        service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                       deadline_seconds=cost / 2)
        service.drain()
        assert lib.backend.driver.calls_submitted == 0
        assert lib.backend.driver.calls_shed == 1

    def test_generous_deadline_completes(self):
        service = EngineService()
        cost = service.admission.price(
            BatchCall.intra(INTRA_GRAD, _frame()))[1]
        ticket = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                                deadline_seconds=cost * 2)
        service.drain()
        assert ticket.state is RequestState.COMPLETED
        assert ticket.attempts == 1
        assert ticket.latency_seconds <= cost * 2

    def test_no_deadline_never_times_out(self):
        service = EngineService()
        tickets = [service.submit(BatchCall.intra(INTRA_GRAD,
                                                  _frame(seed=s)))
                   for s in range(5)]
        report = service.drain()
        assert report.timed_out == 0
        assert all(t.state is RequestState.COMPLETED for t in tickets)


class TestBoundedRetry:
    def test_retries_are_bounded_then_time_out(self):
        service = EngineService()
        cost = service.admission.price(
            BatchCall.intra(INTRA_GRAD, _frame()))[1]
        ticket = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                                deadline_seconds=cost / 2,
                                max_retries=2)
        report = service.drain()
        assert ticket.state is RequestState.TIMED_OUT
        assert ticket.attempts == 3          # initial + 2 retries
        assert report.retried == 2
        assert report.timed_out == 1

    def test_retry_after_transient_backlog_succeeds(self):
        """First dispatch misses because an earlier wave holds the
        engine; the re-based retry fits and completes bit-exactly."""
        service = EngineService()
        blocker_frame = _frame(seed=2)
        victim_frame = _frame(seed=3)
        cost = service.admission.price(
            BatchCall.intra(INTRA_GRAD, victim_frame))[1]
        service.submit(BatchCall.intra(INTRA_BOX3, blocker_frame))
        ticket = service.submit(BatchCall.intra(INTRA_GRAD, victim_frame),
                                deadline_seconds=cost * 1.5,
                                max_retries=1)
        report = service.drain()
        assert ticket.state is RequestState.COMPLETED
        assert ticket.attempts == 2
        assert report.retried == 1 and report.timed_out == 0
        assert ticket.result().equals(
            VectorExecutor.intra(INTRA_GRAD, victim_frame))

    def test_retry_latency_counts_from_original_arrival(self):
        service = EngineService()
        cost = service.admission.price(
            BatchCall.intra(INTRA_GRAD, _frame()))[1]
        service.submit(BatchCall.intra(INTRA_BOX3, _frame(seed=2)))
        ticket = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                                deadline_seconds=cost * 1.5,
                                max_retries=1)
        service.drain()
        # Completed after the blocker's wave plus its own: the modeled
        # latency includes the time spent queued and retried.
        assert ticket.latency_seconds == pytest.approx(
            ticket.completion_seconds - ticket.arrival_seconds)
        assert ticket.latency_seconds > cost


class TestOpenLoopArrivals:
    def test_arrival_seconds_places_requests_on_the_clock(self):
        service = EngineService()
        early = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                               arrival_seconds=0.0)
        late = service.submit(BatchCall.intra(INTRA_BOX3, _frame()),
                              arrival_seconds=1.0)
        service.drain()
        assert early.arrival_seconds == 0.0
        assert late.arrival_seconds == 1.0
        # The late request cannot start before it arrives.
        assert late.completion_seconds > 1.0

    def test_clock_never_runs_backwards(self):
        service = EngineService()
        service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                       arrival_seconds=2.0)
        ticket = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                                arrival_seconds=1.0)
        assert ticket.arrival_seconds == 2.0

    def test_run_until_serves_only_due_work(self):
        service = EngineService()
        first = service.submit(BatchCall.intra(INTRA_GRAD, _frame()),
                               arrival_seconds=0.0)
        service.run_until(0.5)
        assert first.state is RequestState.COMPLETED
        assert service.clock >= 0.5
