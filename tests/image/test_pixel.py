"""Pixel packing: the 64-bit channel layout and its ZBT word split."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.image import ALL_CHANNELS, COLOR_CHANNELS, Channel, Pixel

channel_values = st.fixed_dictionaries({
    "y": st.integers(0, 255),
    "u": st.integers(0, 255),
    "v": st.integers(0, 255),
    "alfa": st.integers(0, 0xFFFF),
    "aux": st.integers(0, 0xFFFF),
})


class TestChannelLayout:
    def test_color_channels_live_in_lower_word(self):
        for channel in COLOR_CHANNELS:
            assert channel.word == "lower"
            assert channel.bits == 8

    def test_meta_channels_live_in_upper_word(self):
        assert Channel.ALFA.word == "upper"
        assert Channel.AUX.word == "upper"
        assert Channel.ALFA.bits == 16
        assert Channel.AUX.bits == 16

    def test_channel_masks_are_disjoint_per_word(self):
        lower = [c for c in ALL_CHANNELS if c.word == "lower"]
        upper = [c for c in ALL_CHANNELS if c.word == "upper"]
        for group in (lower, upper):
            combined = 0
            for channel in group:
                assert combined & channel.mask == 0
                combined |= channel.mask
            assert combined <= 0xFFFFFFFF

    def test_yuv_fits_one_word(self):
        """The whole colour information costs one 32-bit access -- the
        fact behind Table 2's hardware column."""
        total_bits = sum(c.bits for c in COLOR_CHANNELS)
        assert total_bits == 24


class TestPixelValidation:
    @pytest.mark.parametrize("field,value", [
        ("y", 256), ("u", -1), ("v", 999),
        ("alfa", 1 << 16), ("aux", -5),
    ])
    def test_out_of_range_channel_rejected(self, field, value):
        with pytest.raises(ValueError):
            Pixel(**{field: value})

    def test_defaults_are_zero(self):
        pixel = Pixel()
        assert pixel.pack() == (0, 0)

    def test_gray_constructor(self):
        pixel = Pixel.gray(77)
        assert (pixel.y, pixel.u, pixel.v) == (77, 128, 128)


class TestPackUnpack:
    @given(channel_values)
    def test_roundtrip(self, values):
        pixel = Pixel(**values)
        assert Pixel.unpack(*pixel.pack()) == pixel

    @given(channel_values)
    def test_lower_word_carries_only_color(self, values):
        pixel = Pixel(**values)
        lower = pixel.lower_word
        assert lower & 0xFF == values["y"]
        assert (lower >> 8) & 0xFF == values["u"]
        assert (lower >> 16) & 0xFF == values["v"]
        assert lower >> 24 == 0  # reserved bits stay clear

    @given(channel_values)
    def test_upper_word_carries_alfa_aux(self, values):
        pixel = Pixel(**values)
        upper = pixel.upper_word
        assert upper & 0xFFFF == values["alfa"]
        assert upper >> 16 == values["aux"]

    def test_unpack_masks_extraneous_bits(self):
        pixel = Pixel.unpack(0xFF123456, 0xDEADBEEF)
        assert pixel.y == 0x56
        assert pixel.u == 0x34
        assert pixel.v == 0x12
        assert pixel.alfa == 0xBEEF
        assert pixel.aux == 0xDEAD


class TestChannelAccess:
    @given(channel_values, st.sampled_from(list(Channel)))
    def test_get_matches_field(self, values, channel):
        pixel = Pixel(**values)
        assert pixel.get(channel) == values[channel.name.lower()]

    @given(channel_values, st.sampled_from(list(Channel)))
    def test_with_channel_replaces_exactly_one(self, values, channel):
        pixel = Pixel(**values)
        replaced = pixel.with_channel(channel, 1)
        assert replaced.get(channel) == 1
        for other in ALL_CHANNELS:
            if other is not channel:
                assert replaced.get(other) == pixel.get(other)
