"""The software baseline's planar 4:2:0 store and its access counting."""

import numpy as np
import pytest

from repro.image import (AccessCounter, Channel, Frame, ImageFormat, Pixel,
                         PlanarFrame420, noise_frame)


@pytest.fixture
def fmt():
    return ImageFormat("T8x6", 8, 6)


class TestAccessCounter:
    def test_totals(self):
        counter = AccessCounter()
        counter.count_read(Channel.Y, 3)
        counter.count_write(Channel.U)
        assert counter.total_reads == 3
        assert counter.total_writes == 1
        assert counter.total == 4

    def test_reset(self):
        counter = AccessCounter()
        counter.count_read(Channel.Y)
        counter.reset()
        assert counter.total == 0

    def test_snapshot_keys(self):
        counter = AccessCounter()
        snap = counter.snapshot()
        assert snap["total"] == 0
        assert "reads_Y" in snap and "writes_AUX" in snap


class TestPlanarLayout:
    def test_chroma_planes_quarter_size(self, fmt):
        planar = PlanarFrame420(fmt)
        assert planar.plane(Channel.Y).shape == (6, 8)
        assert planar.plane(Channel.U).shape == (3, 4)
        assert planar.plane(Channel.V).shape == (3, 4)
        assert planar.plane(Channel.ALFA).shape == (6, 8)

    def test_chroma_addressed_through_full_res_coords(self, fmt):
        planar = PlanarFrame420(fmt)
        planar.write(Channel.U, 4, 2, 99)
        # The whole 2x2 quad maps to the same chroma sample.
        assert planar.read(Channel.U, 5, 3) == 99
        assert planar.read(Channel.U, 4, 3) == 99

    def test_every_access_counted(self, fmt):
        planar = PlanarFrame420(fmt)
        planar.read(Channel.Y, 0, 0)
        planar.write(Channel.V, 1, 1, 5)
        planar.read_clamped(Channel.Y, -3, 99)
        assert planar.counter.total == 3
        assert planar.counter.reads[Channel.Y] == 2
        assert planar.counter.writes[Channel.V] == 1

    def test_clamped_read_hits_border(self, fmt):
        planar = PlanarFrame420(fmt)
        planar.plane(Channel.Y)[0, 0] = 42
        planar.plane(Channel.Y)[5, 7] = 24
        assert planar.read_clamped(Channel.Y, -5, -5) == 42
        assert planar.read_clamped(Channel.Y, 100, 100) == 24

    def test_out_of_range_raises(self, fmt):
        planar = PlanarFrame420(fmt)
        with pytest.raises(IndexError):
            planar.read(Channel.Y, 8, 0)

    def test_shared_counter(self, fmt):
        counter = AccessCounter()
        a = PlanarFrame420(fmt, counter)
        b = PlanarFrame420(fmt, counter)
        a.read(Channel.Y, 0, 0)
        b.write(Channel.Y, 0, 0, 1)
        assert counter.total == 2


class TestConversions:
    def test_from_frame_decimates_chroma(self, fmt):
        frame = Frame(fmt)
        frame.u[:] = np.arange(48).reshape(6, 8) % 256
        planar = PlanarFrame420.from_frame(frame)
        assert np.array_equal(planar.plane(Channel.U), frame.u[::2, ::2])

    def test_conversion_is_uncounted(self, fmt):
        frame = noise_frame(fmt, seed=9)
        planar = PlanarFrame420.from_frame(frame)
        assert planar.counter.total == 0
        planar.to_frame()
        assert planar.counter.total == 0

    def test_roundtrip_preserves_luma_and_meta(self, fmt):
        frame = noise_frame(fmt, seed=10)
        rebuilt = PlanarFrame420.from_frame(frame).to_frame()
        assert np.array_equal(rebuilt.y, frame.y)
        assert np.array_equal(rebuilt.alfa, frame.alfa)
        assert np.array_equal(rebuilt.aux, frame.aux)

    def test_roundtrip_chroma_is_2x2_constant(self, fmt):
        frame = noise_frame(fmt, seed=11)
        rebuilt = PlanarFrame420.from_frame(frame).to_frame()
        # Each 2x2 quad carries one chroma sample after the roundtrip.
        assert np.array_equal(rebuilt.u[::2, ::2], rebuilt.u[1::2, 1::2])

    def test_lossless_for_420_source(self, fmt):
        """MPEG-1 material is already 4:2:0: chroma constant per quad
        round-trips exactly (the software/hardware stores then agree)."""
        frame = noise_frame(fmt, seed=12)
        frame.u[:] = np.repeat(np.repeat(frame.u[::2, ::2], 2, 0), 2, 1)
        frame.v[:] = np.repeat(np.repeat(frame.v[::2, ::2], 2, 0), 2, 1)
        rebuilt = PlanarFrame420.from_frame(frame).to_frame()
        assert rebuilt.equals(frame)
