"""BT.601 colour conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image import ImageFormat
from repro.image.color import (frame_from_rgb, frame_to_rgb, rgb_to_yuv,
                               yuv_to_rgb)

FMT = ImageFormat("COL", 8, 6)


def solid(r, g, b, shape=(4, 4)):
    rgb = np.zeros(shape + (3,), dtype=np.uint8)
    rgb[..., 0] = r
    rgb[..., 1] = g
    rgb[..., 2] = b
    return rgb


class TestKnownColours:
    def test_white(self):
        y, u, v = rgb_to_yuv(solid(255, 255, 255))
        assert y[0, 0] == 255
        assert u[0, 0] == 128 and v[0, 0] == 128

    def test_black(self):
        y, u, v = rgb_to_yuv(solid(0, 0, 0))
        assert y[0, 0] == 0
        assert u[0, 0] == 128 and v[0, 0] == 128

    def test_gray_is_neutral_chroma(self):
        y, u, v = rgb_to_yuv(solid(90, 90, 90))
        assert y[0, 0] == 90
        assert u[0, 0] == 128 and v[0, 0] == 128

    def test_pure_red_extremes(self):
        y, u, v = rgb_to_yuv(solid(255, 0, 0))
        assert y[0, 0] == round(0.299 * 255)
        assert v[0, 0] == 255       # V carries R - Y
        assert u[0, 0] < 128

    def test_pure_blue_extremes(self):
        y, u, v = rgb_to_yuv(solid(0, 0, 255))
        assert u[0, 0] == 255       # U carries B - Y
        assert v[0, 0] < 128


class TestRoundTrip:
    @given(r=st.integers(0, 255), g=st.integers(0, 255),
           b=st.integers(0, 255))
    @settings(max_examples=60, deadline=None)
    def test_rgb_survives_roundtrip_within_rounding(self, r, g, b):
        back = yuv_to_rgb(*rgb_to_yuv(solid(r, g, b)))
        assert abs(int(back[0, 0, 0]) - r) <= 2
        assert abs(int(back[0, 0, 1]) - g) <= 2
        assert abs(int(back[0, 0, 2]) - b) <= 2

    def test_random_image_roundtrip_close(self):
        rng = np.random.default_rng(8)
        rgb = rng.integers(0, 256, size=(6, 8, 3)).astype(np.uint8)
        back = yuv_to_rgb(*rgb_to_yuv(rgb))
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 2


class TestFrameBridges:
    def test_frame_from_rgb_and_back(self):
        rng = np.random.default_rng(9)
        rgb = rng.integers(0, 256, size=(6, 8, 3)).astype(np.uint8)
        frame = frame_from_rgb(FMT, rgb)
        back = frame_to_rgb(frame)
        assert np.abs(back.astype(int) - rgb.astype(int)).max() <= 2
        assert frame.alfa.max() == 0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            frame_from_rgb(FMT, np.zeros((2, 2, 3), np.uint8))
        with pytest.raises(ValueError):
            rgb_to_yuv(np.zeros((4, 4), np.uint8))
        with pytest.raises(ValueError):
            yuv_to_rgb(np.zeros((2, 2)), np.zeros((2, 2)),
                       np.zeros((3, 3)))
