"""Synthetic content generators: determinism and structure."""

import numpy as np
import pytest

from repro.image import (ImageFormat, blob_frame, checkerboard_frame,
                         frame_from_luma, gradient_frame, noise_frame,
                         textured_panorama)

FMT = ImageFormat("T24", 24, 16)


class TestGradient:
    def test_horizontal_ramp_is_monotonic(self):
        frame = gradient_frame(FMT, horizontal=True)
        row = frame.y[0].astype(int)
        assert all(b >= a for a, b in zip(row, row[1:]))
        assert row[0] == 0 and row[-1] == 255

    def test_vertical_ramp_constant_along_rows(self):
        frame = gradient_frame(FMT, horizontal=False)
        assert (frame.y == frame.y[:, :1]).all()

    def test_neutral_chroma(self):
        frame = gradient_frame(FMT)
        assert (frame.u == 128).all() and (frame.v == 128).all()


class TestCheckerboard:
    def test_cell_structure(self):
        frame = checkerboard_frame(FMT, cell=4, low=10, high=200)
        assert frame.y[0, 0] == 10
        assert frame.y[0, 4] == 200
        assert frame.y[4, 4] == 10
        assert set(np.unique(frame.y)) == {10, 200}

    def test_rejects_bad_cell(self):
        with pytest.raises(ValueError):
            checkerboard_frame(FMT, cell=0)


class TestNoise:
    def test_deterministic_per_seed(self):
        assert noise_frame(FMT, seed=1).equals(noise_frame(FMT, seed=1))

    def test_different_seeds_differ(self):
        assert not noise_frame(FMT, seed=1).equals(noise_frame(FMT, seed=2))

    def test_fills_meta_channels(self):
        frame = noise_frame(FMT, seed=3)
        assert frame.alfa.max() > 255  # uses the full 16-bit range
        assert frame.aux.max() > 255


class TestPanorama:
    def test_shape_and_range(self):
        pano = textured_panorama(200, 120, seed=4)
        assert pano.shape == (120, 200)
        assert pano.min() == 0.0
        assert abs(pano.max() - 255.0) < 1e-9

    def test_deterministic(self):
        a = textured_panorama(64, 64, seed=5)
        b = textured_panorama(64, 64, seed=5)
        assert np.array_equal(a, b)

    def test_textured_not_flat(self):
        pano = textured_panorama(128, 128, seed=6)
        assert pano.std() > 20  # enough contrast for SAD minima

    def test_smooth_locally(self):
        """Band-limited: neighbouring samples stay close, so gradient
        descent sees a usable error surface."""
        pano = textured_panorama(256, 128, seed=7)
        dx = np.abs(np.diff(pano, axis=1))
        assert dx.mean() < 8.0

    def test_rejects_zero_octaves(self):
        with pytest.raises(ValueError):
            textured_panorama(64, 64, octaves=0)


class TestLumaFrame:
    def test_clips_and_rounds(self):
        luma = np.full((FMT.height, FMT.width), -5.0)
        luma[0, 0] = 300.0
        luma[0, 1] = 99.6
        frame = frame_from_luma(FMT, luma)
        assert frame.y[1, 1] == 0
        assert frame.y[0, 0] == 255
        assert frame.y[0, 1] == 100

    def test_shape_check(self):
        with pytest.raises(ValueError):
            frame_from_luma(FMT, np.zeros((2, 2)))


class TestBlobs:
    def test_blob_is_connected_bright_region(self):
        frame = blob_frame(FMT, [(12, 8)], radius=4, inside=220, outside=20)
        assert frame.y[8, 12] == 220
        assert frame.y[0, 0] == 20
        area = int((frame.y == 220).sum())
        assert 30 <= area <= 55  # roughly pi * r^2

    def test_multiple_blobs(self):
        frame = blob_frame(FMT, [(5, 5), (18, 10)], radius=3)
        assert frame.y[5, 5] == frame.y[10, 18] == 200
