"""Frame file I/O: PGM, planar YUV clips, packed dumps."""

import numpy as np
import pytest

from repro.image import ImageFormat, Frame, noise_frame
from repro.image.io import (AE64_MAGIC, read_ae64, read_pgm, read_yuv420,
                            write_ae64, write_pgm, write_yuv420,
                            yuv420_frame_bytes)

FMT = ImageFormat("IO12", 12, 8)


class TestPgm:
    def test_roundtrip(self, tmp_path):
        plane = np.arange(96, dtype=np.uint8).reshape(8, 12)
        path = tmp_path / "x.pgm"
        write_pgm(path, plane)
        assert np.array_equal(read_pgm(path), plane)

    def test_float_input_clipped(self, tmp_path):
        plane = np.full((4, 4), 300.0)
        plane[0, 0] = -5.0
        path = tmp_path / "c.pgm"
        write_pgm(path, plane)
        loaded = read_pgm(path)
        assert loaded[0, 0] == 0
        assert loaded[1, 1] == 255

    def test_header_with_comment(self, tmp_path):
        path = tmp_path / "c.pgm"
        path.write_bytes(b"P5\n# a comment\n2 2\n255\n\x01\x02\x03\x04")
        assert read_pgm(path).tolist() == [[1, 2], [3, 4]]

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n2 2\n255\n" + b"\x00" * 12)
        with pytest.raises(ValueError):
            read_pgm(path)

    def test_rejects_truncation(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x00")
        with pytest.raises(ValueError):
            read_pgm(path)

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 3)))


class TestYuv420:
    def test_frame_size(self):
        assert yuv420_frame_bytes(FMT) == 96 + 2 * 24

    def test_clip_roundtrip_420_content(self, tmp_path):
        """Frames whose chroma is constant per quad (true 4:2:0 content)
        survive the clip exactly."""
        frames = []
        for seed in (1, 2, 3):
            frame = noise_frame(FMT, seed=seed)
            frame.u[:] = np.repeat(np.repeat(frame.u[::2, ::2], 2, 0), 2, 1)
            frame.v[:] = np.repeat(np.repeat(frame.v[::2, ::2], 2, 0), 2, 1)
            frame.alfa[:] = 0
            frame.aux[:] = 0
            frames.append(frame)
        path = tmp_path / "clip.yuv"
        assert write_yuv420(path, frames) == 3
        loaded = read_yuv420(path, FMT)
        assert len(loaded) == 3
        for original, back in zip(frames, loaded):
            assert back.equals(original)

    def test_max_frames(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv420(path, [noise_frame(FMT, seed=s) for s in range(4)])
        assert len(read_yuv420(path, FMT, max_frames=2)) == 2

    def test_append(self, tmp_path):
        path = tmp_path / "clip.yuv"
        write_yuv420(path, [noise_frame(FMT, seed=1)])
        write_yuv420(path, [noise_frame(FMT, seed=2)], append=True)
        assert len(read_yuv420(path, FMT)) == 2

    def test_truncated_clip_rejected(self, tmp_path):
        path = tmp_path / "clip.yuv"
        path.write_bytes(b"\x00" * (yuv420_frame_bytes(FMT) - 1))
        with pytest.raises(ValueError):
            read_yuv420(path, FMT)


class TestAe64:
    def test_lossless_roundtrip_all_channels(self, tmp_path):
        frame = noise_frame(FMT, seed=9)
        path = tmp_path / "f.ae64"
        write_ae64(path, frame)
        loaded = read_ae64(path)
        assert loaded.equals(frame)
        assert loaded.width == FMT.width

    def test_magic_checked(self, tmp_path):
        path = tmp_path / "bad.ae64"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(ValueError):
            read_ae64(path)

    def test_header_layout(self, tmp_path):
        frame = Frame(FMT)
        path = tmp_path / "f.ae64"
        write_ae64(path, frame)
        blob = path.read_bytes()
        assert blob.startswith(AE64_MAGIC)
        assert int.from_bytes(blob[5:9], "little") == FMT.width
        assert len(blob) == 5 + 8 + 2 * 4 * FMT.pixels
