"""Packed frames: channel planes, pixel access, ZBT word views, strips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image import (ALL_CHANNELS, Channel, Frame, ImageFormat, Pixel,
                         STRIP_LINES, noise_frame)


@pytest.fixture
def fmt():
    return ImageFormat("T8x6", 8, 6)


class TestPixelAccess:
    def test_set_then_get(self, fmt):
        frame = Frame(fmt)
        pixel = Pixel(y=10, u=20, v=30, alfa=40000, aux=50000)
        frame.set_pixel(3, 2, pixel)
        assert frame.get_pixel(3, 2) == pixel

    def test_out_of_range_raises(self, fmt):
        frame = Frame(fmt)
        with pytest.raises(IndexError):
            frame.get_pixel(8, 0)
        with pytest.raises(IndexError):
            frame.set_pixel(0, 6, Pixel())

    def test_fill(self, fmt):
        frame = Frame(fmt)
        frame.fill(Pixel(y=7, u=8, v=9, alfa=10, aux=11))
        assert frame.get_pixel(0, 0) == frame.get_pixel(7, 5)
        assert int(frame.y.sum()) == 7 * fmt.pixels

    def test_plane_dtype_widths(self, fmt):
        frame = Frame(fmt)
        assert frame.y.dtype == np.uint8
        assert frame.alfa.dtype == np.uint16
        assert frame.aux.dtype == np.uint16


class TestWordView:
    def test_words_match_pixel_packing(self, fmt):
        frame = noise_frame(fmt, seed=3)
        lower, upper = frame.to_words()
        for y in (0, 3, 5):
            for x in (0, 4, 7):
                expected = frame.get_pixel(x, y).pack()
                assert (int(lower[y, x]), int(upper[y, x])) == expected

    def test_roundtrip(self, fmt):
        frame = noise_frame(fmt, seed=4)
        lower, upper = frame.to_words()
        rebuilt = Frame.from_words(fmt, lower, upper)
        assert rebuilt.equals(frame)

    def test_from_words_shape_check(self, fmt):
        with pytest.raises(ValueError):
            Frame.from_words(fmt, np.zeros((2, 2), np.uint32),
                             np.zeros((2, 2), np.uint32))


class TestStrips:
    def test_strip_bounds_cover_frame_exactly(self):
        fmt = ImageFormat("T8x40", 8, 40)
        frame = Frame(fmt)
        bounds = list(frame.strip_bounds())
        assert bounds[0] == (0, STRIP_LINES)
        assert bounds[-1][1] == 40
        covered = sum(bottom - top for top, bottom in bounds)
        assert covered == 40

    def test_strip_extraction_copies_content(self):
        fmt = ImageFormat("T8x32", 8, 32)
        frame = noise_frame(fmt, seed=5)
        strip = frame.strip(1)
        assert strip.height == STRIP_LINES
        assert np.array_equal(strip.y, frame.y[16:32])
        strip.y[:] = 0  # mutating the copy leaves the source intact
        assert frame.y[16:32].any()

    def test_strip_index_bounds(self, fmt):
        frame = Frame(fmt)
        with pytest.raises(IndexError):
            frame.strip(1)


class TestCopyEquality:
    def test_copy_is_deep(self, fmt):
        frame = noise_frame(fmt, seed=6)
        duplicate = frame.copy()
        assert duplicate.equals(frame)
        duplicate.aux[0, 0] += 1
        assert not duplicate.equals(frame)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_word_roundtrip_property(self, seed):
        fmt = ImageFormat("TP", 5, 4)
        frame = noise_frame(fmt, seed=seed)
        lower, upper = frame.to_words()
        assert Frame.from_words(fmt, lower, upper).equals(frame)
