"""Frame formats: the QCIF/CIF geometry the ZBT map is sized for."""

import pytest

from repro.image import (CIF, PIXEL_BYTES, QCIF, STRIP_LINES, ImageFormat,
                         format_by_name)


class TestPaperFormats:
    def test_qcif_dimensions(self):
        assert (QCIF.width, QCIF.height) == (176, 144)

    def test_cif_dimensions(self):
        assert (CIF.width, CIF.height) == (352, 288)

    def test_cif_pixel_count_matches_table2_base(self):
        """Table 2's hardware column is 2 x this number."""
        assert CIF.pixels == 101_376
        assert 2 * CIF.pixels == 202_752

    def test_packed_sizes_match_paper_approximations(self):
        # "QCIF ... approx. 200 kBytes" / "CIF ... approx. 800 kBytes"
        assert QCIF.bytes_packed == QCIF.pixels * PIXEL_BYTES
        assert 190_000 < QCIF.bytes_packed < 210_000
        assert 790_000 < CIF.bytes_packed < 820_000

    def test_sixteen_divides_both_heights(self):
        """Section 3.1: 'Sixteen is also divisor of the image size'."""
        assert QCIF.strip_aligned
        assert CIF.strip_aligned
        assert QCIF.strips == 144 // STRIP_LINES == 9
        assert CIF.strips == 288 // STRIP_LINES == 18


class TestImageFormat:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            ImageFormat("bad", 0, 10)
        with pytest.raises(ValueError):
            ImageFormat("bad", 10, -1)

    def test_contains(self):
        fmt = ImageFormat("t", 4, 3)
        assert fmt.contains(0, 0)
        assert fmt.contains(3, 2)
        assert not fmt.contains(4, 0)
        assert not fmt.contains(0, 3)
        assert not fmt.contains(-1, 1)

    def test_partial_strip_counting(self):
        fmt = ImageFormat("odd", 8, 20)
        assert fmt.strips == 2
        assert not fmt.strip_aligned

    def test_lookup_by_name(self):
        assert format_by_name("cif") is CIF
        assert format_by_name(" QCIF ") is QCIF
        with pytest.raises(KeyError):
            format_by_name("PAL")
