"""The unified submission surface: SubmitOptions and its legacy shims.

One frozen options record carries every piece of serving metadata
(priority, deadline, retries, tenant, placement, arrival) across all
three submission layers -- ``EngineService.submit``,
``AddressLib.run_batch`` and ``AddressEngineDriver.submit``.  The old
per-layer signatures still run bit-identically, but each warns with
:class:`DeprecationWarning`; mixing old and new in one call is a
:class:`TypeError`.
"""

import dataclasses
import warnings

import pytest

from repro.addresslib import AddressLib, BatchCall, INTRA_GRAD
from repro.api import (EnginePool, EngineService, Priority,
                       SubmitOptions)
from repro.core import intra_config
from repro.host import AddressEngineDriver, CallScheduler, EngineBackend
from repro.image import ImageFormat, noise_frame

QCIF = ImageFormat("QCIF", 176, 144)
SMALL = ImageFormat("P16x16", 16, 16)


def _call(seed=0):
    return BatchCall.intra(INTRA_GRAD, noise_frame(QCIF, seed=seed))


def _drain_one(service, *args, **kwargs):
    ticket = service.submit(_call(), *args, **kwargs)
    service.drain()
    return ticket


class TestSubmitOptionsRecord:
    def test_defaults(self):
        options = SubmitOptions()
        assert options.priority is Priority.STANDARD
        assert options.deadline_seconds is None
        assert options.max_retries == 0
        assert options.tenant is None
        assert options.placement is None
        assert options.arrival_seconds is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SubmitOptions().max_retries = 3

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SubmitOptions(max_retries=-1)

    def test_negative_deadline_rejected(self):
        with pytest.raises(ValueError):
            SubmitOptions(deadline_seconds=-0.5)


class TestServiceShim:
    def test_new_signature_does_not_warn(self):
        service = EngineService()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ticket = _drain_one(service, SubmitOptions(
                priority=Priority.INTERACTIVE, max_retries=1))
        assert ticket.result() is not None

    def test_bare_submit_does_not_warn(self):
        service = EngineService()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _drain_one(service)

    def test_legacy_keywords_warn_once_per_call(self):
        service = EngineService()
        with pytest.warns(DeprecationWarning) as caught:
            _drain_one(service, priority=Priority.BULK,
                       deadline_seconds=1.0)
        assert len(caught) == 1

    def test_legacy_positional_priority_warns(self):
        service = EngineService()
        with pytest.warns(DeprecationWarning):
            ticket = _drain_one(service, Priority.INTERACTIVE)
        assert ticket.priority is Priority.INTERACTIVE

    def test_legacy_and_new_results_agree(self):
        old_service, new_service = EngineService(), EngineService()
        with pytest.warns(DeprecationWarning):
            old = _drain_one(old_service, priority=Priority.BULK)
        new = _drain_one(new_service,
                         SubmitOptions(priority=Priority.BULK))
        assert old.result().equals(new.result())

    def test_mixing_options_and_legacy_is_a_type_error(self):
        service = EngineService()
        with pytest.raises(TypeError):
            service.submit(_call(), SubmitOptions(),
                           priority=Priority.BULK)

    def test_tenant_lands_in_the_service_books(self):
        service = EngineService(pool=EnginePool.of_engines(2))
        for seed in range(3):
            service.submit(_call(seed),
                           SubmitOptions(tenant="cam-north"))
        service.submit(_call(9), SubmitOptions(tenant="cam-south"))
        report = service.drain()
        assert report.calls_by_tenant == {"cam-north": 3,
                                          "cam-south": 1}

    def test_placement_hint_routes_the_wave(self):
        service = EngineService(pool=EnginePool.of_engines(3))
        _drain_one(service, SubmitOptions(placement=2))
        report = service.report()
        assert report.pool is not None
        assert report.pool.hinted_waves == 1
        assert report.pool.workers[2].calls_routed == 1


class TestRunBatchShim:
    def test_positional_scheduler_warns_and_still_runs(self):
        calls = [_call(seed) for seed in range(3)]
        with CallScheduler(max_workers=2) as scheduler:
            keyword_lib = AddressLib()
            want = keyword_lib.run_batch(calls, scheduler=scheduler)
            legacy_lib = AddressLib()
            with pytest.warns(DeprecationWarning):
                got = legacy_lib.run_batch(calls, scheduler)
        for got_frame, want_frame in zip(got, want):
            assert got_frame.equals(want_frame)

    def test_positional_scheduler_plus_keyword_is_a_type_error(self):
        with CallScheduler(max_workers=2) as scheduler:
            with pytest.raises(TypeError):
                AddressLib().run_batch([_call()], scheduler,
                                       scheduler=scheduler)

    def test_tenant_tallied_in_the_call_log(self):
        lib = AddressLib()
        lib.run_batch([_call(0), _call(1)],
                      options=SubmitOptions(tenant="edge-7"))
        lib.run_batch([_call(2)])
        assert lib.log.by_tenant == {"edge-7": 2}
        lib.log.clear()
        assert lib.log.by_tenant == {}


class TestDriverShim:
    def test_positional_resident_warns_and_matches_keyword(self):
        config = intra_config(INTRA_GRAD, SMALL)
        frame = noise_frame(SMALL, seed=3)
        keyword = AddressEngineDriver().submit(config, frame,
                                               resident=(False,))
        with pytest.warns(DeprecationWarning):
            legacy = AddressEngineDriver().submit(config, frame, None,
                                                  (False,))
        assert legacy.call_seconds == keyword.call_seconds

    def test_positional_plus_keyword_is_a_type_error(self):
        config = intra_config(INTRA_GRAD, SMALL)
        frame = noise_frame(SMALL, seed=4)
        with pytest.raises(TypeError):
            AddressEngineDriver().submit(config, frame, None, (False,),
                                         resident=(False,))

    def test_tenant_tallied_per_driver(self):
        config = intra_config(INTRA_GRAD, SMALL)
        frame = noise_frame(SMALL, seed=5)
        driver = AddressEngineDriver()
        driver.submit(config, frame,
                      options=SubmitOptions(tenant="lab"))
        driver.submit(config, frame)
        assert driver.calls_by_tenant == {"lab": 1}


class TestFacadeExports:
    def test_one_import_surface_covers_the_stack(self):
        import repro.api as api
        for name in ("AddressLib", "AddressEngineDriver", "BatchCall",
                     "EnginePool", "EngineService", "EngineWorker",
                     "Priority", "ServiceReport", "SubmitOptions"):
            assert hasattr(api, name), name

    def test_backend_shim_sees_tenant_through_run_batch(self):
        lib = AddressLib(EngineBackend())
        lib.run_batch([_call(6)], options=SubmitOptions(tenant="t0"))
        assert lib.log.by_tenant == {"t0": 1}
