"""Shared fixtures: small frame formats and deterministic content.

Cycle-level engine tests run on small custom formats (the model accepts
any rectangular size); QCIF/CIF are reserved for the analytic checks
where exact paper numbers matter.
"""

from __future__ import annotations

import pytest

from repro.image import ImageFormat, noise_frame


@pytest.fixture
def fmt16() -> ImageFormat:
    """A 16x16 frame: one strip."""
    return ImageFormat("T16", 16, 16)


@pytest.fixture
def fmt32() -> ImageFormat:
    """A 32x32 frame: two strips (exercises block A/B double buffering)."""
    return ImageFormat("T32", 32, 32)


@pytest.fixture
def fmt48x32() -> ImageFormat:
    """A non-square two-strip frame."""
    return ImageFormat("T48x32", 48, 32)


@pytest.fixture
def frame16(fmt16):
    """Deterministic random content in all five channels."""
    return noise_frame(fmt16, seed=101)


@pytest.fixture
def frame32(fmt32):
    return noise_frame(fmt32, seed=202)


@pytest.fixture
def frame32_b(fmt32):
    return noise_frame(fmt32, seed=203)
