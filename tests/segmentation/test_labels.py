"""Label-map utilities."""

import numpy as np
import pytest

from repro.segmentation import (adjacency, boundary_mask, coverage,
                                merge_labels, relabel_compact,
                                segment_means, segment_sizes)


def quad_labels():
    """A 4x4 map with four 2x2 quadrant segments labelled 3, 7, 9, 12."""
    labels = np.zeros((4, 4), dtype=np.int32)
    labels[:2, :2] = 3
    labels[:2, 2:] = 7
    labels[2:, :2] = 9
    labels[2:, 2:] = 12
    return labels


class TestRelabel:
    def test_compacts_to_first_appearance_order(self):
        labels, count = relabel_compact(quad_labels())
        assert count == 4
        assert labels[0, 0] == 0
        assert labels[0, 3] == 1
        assert labels[3, 0] == 2
        assert labels[3, 3] == 3

    def test_preserves_unassigned(self):
        raw = quad_labels()
        raw[0, 0] = -1
        labels, count = relabel_compact(raw)
        assert labels[0, 0] == -1
        assert count == 4


class TestStatistics:
    def test_sizes(self):
        sizes = segment_sizes(quad_labels())
        assert sizes == {3: 4, 7: 4, 9: 4, 12: 4}

    def test_means(self):
        labels = quad_labels()
        values = np.arange(16, dtype=np.float64).reshape(4, 4)
        means = segment_means(labels, values)
        assert means[3] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_coverage(self):
        labels = quad_labels()
        assert coverage(labels) == 1.0
        labels[0, 0] = -1
        assert coverage(labels) == pytest.approx(15 / 16)


class TestAdjacency:
    def test_quadrants_touch_their_neighbours(self):
        graph = adjacency(quad_labels())
        assert graph[3] == {7, 9}
        assert graph[12] == {7, 9}

    def test_diagonal_not_adjacent(self):
        graph = adjacency(quad_labels())
        assert 12 not in graph[3]

    def test_single_segment_has_no_neighbours(self):
        graph = adjacency(np.zeros((3, 3), dtype=np.int32))
        assert graph == {0: set()}


class TestBoundaryAndMerge:
    def test_boundary_mask(self):
        mask = boundary_mask(quad_labels())
        assert mask[0, 1] and mask[0, 2]   # across the vertical split
        assert not mask[0, 0]

    def test_merge_labels(self):
        merged = merge_labels(quad_labels(), [(3, 7), (3, 9)])
        assert segment_sizes(merged) == {3: 12, 12: 4}
