"""Hierarchical region merging."""

import numpy as np
import pytest

from repro.segmentation import HierarchyBuilder, segment_sizes


def striped(levels=(10, 20, 200, 210)):
    """Four vertical stripes with the given mean luminances."""
    labels = np.zeros((8, 8), dtype=np.int32)
    luma = np.zeros((8, 8), dtype=np.float64)
    for index, value in enumerate(levels):
        labels[:, index * 2:(index + 1) * 2] = index
        luma[:, index * 2:(index + 1) * 2] = value
    return labels, luma


class TestMergeOrder:
    def test_most_similar_adjacent_pair_merges_first(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=3).build(labels, luma)
        first = hierarchy.events[0]
        assert {first.survivor, first.absorbed} in ({0, 1}, {2, 3})

    def test_merges_down_to_min_regions(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=2).build(labels, luma)
        assert hierarchy.events[-1].regions_after == 2

    def test_full_merge_to_single_region(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=1).build(labels, luma)
        final = hierarchy.labels_at(1)
        assert len(np.unique(final)) == 1

    def test_dissimilarity_nondecreasing_within_scale(self):
        """The two cheap stripe merges happen before the expensive
        dark/bright join."""
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=1).build(labels, luma)
        costs = [event.dissimilarity for event in hierarchy.events]
        assert costs[-1] == max(costs)


class TestCutLevels:
    def test_labels_at_intermediate_level(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=1).build(labels, luma)
        two = hierarchy.labels_at(2)
        sizes = segment_sizes(two)
        assert len(sizes) == 2
        assert set(sizes.values()) == {32}
        # The dark pair and the bright pair form the two objects.
        assert two[0, 0] == two[0, 3]
        assert two[0, 4] == two[0, 7]
        assert two[0, 0] != two[0, 7]

    def test_labels_at_initial_level(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=1).build(labels, luma)
        four = hierarchy.labels_at(4)
        assert len(np.unique(four)) == 4

    def test_cut_above_initial_rejected(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder().build(labels, luma)
        with pytest.raises(ValueError):
            hierarchy.labels_at(5)


class TestProfileAndValidation:
    def test_merge_work_profiled(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=1).build(labels, luma)
        assert hierarchy.profile.total_instructions > 0

    def test_min_regions_validated(self):
        with pytest.raises(ValueError):
            HierarchyBuilder(min_regions=0)

    def test_merged_regions_stay_connected(self):
        labels, luma = striped()
        hierarchy = HierarchyBuilder(min_regions=1).build(labels, luma)
        for cut in (3, 2, 1):
            cut_labels = hierarchy.labels_at(cut)
            # Vertical stripes: every region is a contiguous column band.
            for region in np.unique(cut_labels):
                columns = np.unique(np.where(cut_labels == region)[1])
                assert columns.max() - columns.min() + 1 == len(columns)
