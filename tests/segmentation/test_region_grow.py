"""Full-frame region growing over segment addressing."""

import numpy as np
import pytest

from repro.addresslib import AddressLib, AddressingMode
from repro.image import ImageFormat, blob_frame, checkerboard_frame
from repro.segmentation import (RegionGrowSegmenter, RegionGrowSettings,
                                coverage, segment_sizes)

FMT = ImageFormat("S64", 64, 64)


class TestSeedSelection:
    def test_seeds_on_grid_pitch(self):
        lib = AddressLib()
        segmenter = RegionGrowSegmenter(
            lib, RegionGrowSettings(seed_pitch=16, seed_snap_radius=0))
        gradient = np.zeros((64, 64))
        seeds = segmenter.select_seeds(gradient)
        assert len(seeds) == 16
        assert (8, 8) in seeds

    def test_seeds_snap_to_gradient_minima(self):
        lib = AddressLib()
        segmenter = RegionGrowSegmenter(
            lib, RegionGrowSettings(seed_pitch=64, seed_snap_radius=4))
        gradient = np.full((64, 64), 100.0)
        gradient[30, 34] = 0.0  # a minimum near the grid point (32, 32)
        seeds = segmenter.select_seeds(gradient)
        assert seeds == [(34, 30)]


class TestSegmentation:
    def test_partition_is_complete(self):
        frame = blob_frame(FMT, [(20, 20), (45, 45)], radius=10)
        output = RegionGrowSegmenter(AddressLib()).segment_frame(frame)
        assert coverage(output.labels) == 1.0

    def test_blobs_are_single_segments(self):
        frame = blob_frame(FMT, [(20, 20), (45, 45)], radius=10)
        output = RegionGrowSegmenter(AddressLib()).segment_frame(frame)
        blob_label_a = output.labels[20, 20]
        blob_label_b = output.labels[45, 45]
        assert blob_label_a != blob_label_b
        # Each blob's pixels share one label.
        blob_mask = frame.y == 200
        assert len(np.unique(output.labels[blob_mask])) == 2

    def test_background_separate_from_blobs(self):
        frame = blob_frame(FMT, [(32, 32)], radius=12)
        output = RegionGrowSegmenter(AddressLib()).segment_frame(frame)
        assert output.labels[0, 0] != output.labels[32, 32]

    def test_checkerboard_splits_cells(self):
        frame = checkerboard_frame(FMT, cell=16)
        output = RegionGrowSegmenter(AddressLib()).segment_frame(frame)
        assert output.segment_count >= 16
        sizes = segment_sizes(output.labels)
        assert max(sizes.values()) <= 16 * 16

    def test_labels_compact(self):
        frame = blob_frame(FMT, [(32, 32)], radius=10)
        output = RegionGrowSegmenter(AddressLib()).segment_frame(frame)
        ids = np.unique(output.labels)
        assert ids.min() == 0
        assert ids.max() == output.segment_count - 1

    def test_calls_logged_through_addresslib(self):
        lib = AddressLib()
        frame = blob_frame(FMT, [(32, 32)], radius=10)
        RegionGrowSegmenter(lib).segment_frame(frame)
        assert lib.log.intra_calls == 1   # the gradient call
        assert lib.log.count(AddressingMode.SEGMENT) >= 1

    def test_homogeneity_threshold_controls_granularity(self):
        """A looser criterion merges across soft edges -> fewer segments."""
        from repro.image import frame_from_luma, textured_panorama
        luma = textured_panorama(64, 64, seed=3)
        frame = frame_from_luma(ImageFormat("S64b", 64, 64), luma)
        tight = RegionGrowSegmenter(
            AddressLib(), RegionGrowSettings(luma_delta=2)).segment_frame(
            frame)
        loose = RegionGrowSegmenter(
            AddressLib(), RegionGrowSettings(luma_delta=40)).segment_frame(
            frame)
        assert loose.segment_count < tight.segment_count
