"""The factor-30 profiling workload (claim C1)."""

import pytest

from repro.image import QCIF, blob_frame
from repro.segmentation import WorkloadProfile, profile_segmentation_workload


@pytest.fixture(scope="module")
def workload():
    frame = blob_frame(QCIF, [(40, 40), (120, 70), (60, 110)], radius=20)
    return profile_segmentation_workload(frame)


class TestSplit:
    def test_low_level_dominates(self, workload):
        """The pixel-level (offloadable) share must dwarf the host-side
        region-graph work -- the premise of the coprocessor approach."""
        assert workload.offloadable_fraction > 0.9

    def test_amdahl_bound_near_paper_estimate(self, workload):
        """Section 1: 'the maximum achievable acceleration ... is
        estimated as a factor of 30'."""
        assert 20 < workload.amdahl_bound < 45

    def test_addressing_dominates_low_level(self, workload):
        """'Pixel address calculations are the dominant operations' --
        within the offloadable work, addressing classes lead."""
        assert workload.addressing_fraction_of_low_level > 0.6

    def test_total_is_sum_of_parts(self, workload):
        assert workload.total_instructions == pytest.approx(
            workload.low_level.total_instructions
            + workload.high_level.total_instructions)


class TestWorkloadOutputs:
    def test_segmentation_complete(self, workload):
        from repro.segmentation import coverage
        assert coverage(workload.segmentation.labels) == 1.0
        assert workload.segmentation.segment_count > 3

    def test_hierarchy_built(self, workload):
        assert len(workload.hierarchy.events) > 0

    def test_empty_profile_degenerate(self):
        profile = WorkloadProfile.__new__(WorkloadProfile)
        from repro.addresslib import OpProfile
        profile.low_level = OpProfile()
        profile.high_level = OpProfile()
        assert profile.offloadable_fraction == 0.0
