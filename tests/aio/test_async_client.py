"""The asyncio facade: bit-exactness, streaming, backpressure.

The async client may interleave production, dispatch and consumption
any way the event loop likes -- but every awaited ticket must evaluate
to *exactly* the serial ``VectorExecutor`` result for its call (same
0xFA57 corpus recipe as the scheduler/service equivalence suites), and
a replayed submission sequence must cut identical modeled books, or
the facade has smuggled wall-clock behaviour into the modeled domain.
"""

import asyncio
import random

import pytest

from repro.addresslib import BatchCall, INTER_OPS, INTRA_OPS, VectorExecutor
from repro.aio import AsyncEngineClient
from repro.api import (EnginePool, EngineService, Priority, RequestState,
                       ServiceError, SubmitOptions)
from repro.image import ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


class TestCorpusEquivalence:
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_awaited_results_match_serial_executor(self, shard):
        """The full corpus shard through the facade, random priority
        classes, awaited out of submission order: bit-exact."""
        rng = random.Random(0xFA57 + shard)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]
        options = [SubmitOptions(priority=rng.choice(list(Priority)))
                   for _ in calls]

        async def run():
            service = EngineService(queue_depth=len(calls))
            async with AsyncEngineClient(service) as client:
                tickets = [await client.submit(call, opts)
                           for call, opts in zip(calls, options)]
                results = [await ticket for ticket in tickets]
                report = await client.drain()
            return results, report

        results, report = asyncio.run(run())
        assert report.completed == len(calls)
        assert report.rejected == 0 and report.timed_out == 0
        for call, got in zip(calls, results):
            _assert_same(got, _serial_reference(call))

    def test_pool_backed_facade_matches_serial(self):
        """Same check against a 4-board pool (placement in play)."""
        rng = random.Random(0xFA57 + 21)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]

        async def run():
            service = EngineService(pool=EnginePool.of_engines(4),
                                    queue_depth=len(calls))
            async with AsyncEngineClient(service) as client:
                tickets = [await client.submit(call) for call in calls]
                return [await ticket for ticket in tickets]

        for call, got in zip(calls, asyncio.run(run())):
            _assert_same(got, _serial_reference(call))


class TestStreaming:
    def test_completions_stream_while_submitting(self):
        """Consumers see retired waves before the producer finishes."""
        fmt = ImageFormat("T16", 16, 16)
        calls = [BatchCall.intra(_INTRA[0], noise_frame(fmt, seed=s))
                 for s in range(12)]

        async def run():
            service = EngineService(queue_depth=4, max_batch=2)
            streamed = []
            async with AsyncEngineClient(service) as client:
                stream = client.completions()

                async def consume():
                    async with stream:
                        async for ticket in stream:
                            streamed.append(ticket)
                            if len(streamed) >= len(calls):
                                break

                consumer = asyncio.ensure_future(consume())
                for call in calls:
                    await client.submit(call)
                await client.drain()
                await consumer
            return streamed

        streamed = asyncio.run(run())
        assert len(streamed) == len(calls)
        assert all(t.ticket.state is RequestState.COMPLETED
                   for t in streamed)
        # Resolution order is modeled-completion order: monotone.
        times = [t.ticket.completion_seconds for t in streamed]
        assert times == sorted(times)

    def test_stream_registration_is_eager(self):
        """Tickets resolved before the consumer task first runs are
        buffered, not lost -- the stream exists from the call, not
        from the first iteration."""
        fmt = ImageFormat("T16", 16, 16)

        async def run():
            service = EngineService(queue_depth=8)
            async with AsyncEngineClient(service) as client:
                stream = client.completions()
                ticket = await client.submit(
                    BatchCall.intra(_INTRA[0], noise_frame(fmt, seed=1)))
                await client.drain()  # resolves before any iteration
                assert ticket.done
                async with stream:
                    got = await asyncio.wait_for(stream.__anext__(), 1.0)
                return got.request_id == ticket.request_id

        assert asyncio.run(run())

    def test_close_ends_streams_and_fails_unresolved(self):
        """Closing with work in flight fails the ticket (no forever
        awaiter) and terminates every completion stream."""
        fmt = ImageFormat("T16", 16, 16)

        async def run():
            service = EngineService(queue_depth=8)
            client = AsyncEngineClient(service)
            async with client:
                stream = client.completions()
                ticket = await client.submit(
                    BatchCall.intra(_INTRA[0], noise_frame(fmt, seed=2)))
            # Client closed with the request still queued.
            with pytest.raises(ServiceError):
                await ticket
            items = [t async for t in stream]
            return items

        assert asyncio.run(run()) == []


class TestBackpressure:
    def test_full_queue_suspends_then_completes_everything(self):
        """Producers outrunning a depth-4 queue suspend (counted) and
        every request still completes -- nothing is shed."""
        fmt = ImageFormat("T16", 16, 16)
        total = 24

        async def run():
            service = EngineService(queue_depth=4, max_batch=2)
            async with AsyncEngineClient(service) as client:
                tickets = [await client.submit(
                    BatchCall.intra(_INTRA[0], noise_frame(fmt, seed=s)))
                    for s in range(total)]
                report = await client.drain()
                waits = client.backpressure_waits
            return tickets, report, waits, service.queue.high_water

        tickets, report, waits, high_water = asyncio.run(run())
        assert report.completed == total
        assert report.rejected == 0
        assert waits > 0
        assert high_water <= 4
        assert all(t.ticket.state is RequestState.COMPLETED
                   for t in tickets)

    def test_backpressure_off_rejects_queue_full(self):
        """``backpressure=False`` restores the synchronous contract:
        the marginal submit comes back already rejected and awaiting
        it raises."""
        fmt = ImageFormat("T16", 16, 16)

        async def run():
            service = EngineService(queue_depth=2)
            async with AsyncEngineClient(service,
                                         backpressure=False) as client:
                tickets = [await client.submit(
                    BatchCall.intra(_INTRA[0], noise_frame(fmt, seed=s)))
                    for s in range(6)]
                rejected = [t for t in tickets if t.done]
                assert rejected, "expected queue-full rejections"
                with pytest.raises(ServiceError):
                    await rejected[0]
                report = await client.drain()
            return tickets, report

        tickets, report = asyncio.run(run())
        assert report.rejected_by_reason.get("queue_full", 0) > 0
        assert report.completed == len(tickets) - report.rejected


class TestTicketLifecycle:
    def test_release_bounds_service_ticket_table(self):
        """Account-then-release keeps the service's ticket table at
        O(in-flight), the memory valve million-request replays need."""
        fmt = ImageFormat("T16", 16, 16)

        async def run():
            service = EngineService(queue_depth=8)
            async with AsyncEngineClient(service) as client:
                for s in range(32):
                    ticket = await client.submit(BatchCall.intra(
                        _INTRA[0], noise_frame(fmt, seed=s)))
                    await ticket.wait()
                    client.release(ticket)
                await client.drain()
            return len(service._tickets)

        assert asyncio.run(run()) == 0

    def test_release_requires_resolution(self):
        """Releasing a still-queued ticket is a caller bug: the
        service would KeyError at completion otherwise."""
        fmt = ImageFormat("T16", 16, 16)

        async def run():
            service = EngineService(queue_depth=8)
            async with AsyncEngineClient(service) as client:
                ticket = await client.submit(BatchCall.intra(
                    _INTRA[0], noise_frame(fmt, seed=9)))
                with pytest.raises(ServiceError):
                    client.release(ticket)
                await client.drain()

        asyncio.run(run())


class TestModeledDeterminism:
    def test_replayed_arrivals_cut_identical_books(self):
        """The same arrival-stamped submission sequence, twice, through
        the facade: identical modeled books (latency percentiles,
        completion counts, wave counts) -- wall scheduling must never
        leak into modeled accounting."""
        rng = random.Random(0xA10)
        fmt = ImageFormat("T16", 16, 16)
        plan = [(s, rng.uniform(0.0, 0.02),
                 rng.choice(list(Priority))) for s in range(40)]
        arrivals = sorted(plan, key=lambda row: row[1])

        async def run_once():
            service = EngineService(pool=EnginePool.of_engines(2),
                                    queue_depth=8, max_batch=4)
            async with AsyncEngineClient(service) as client:
                for seed, arrival, priority in arrivals:
                    await client.submit(
                        BatchCall.intra(_INTRA[0],
                                        noise_frame(fmt, seed=seed)),
                        SubmitOptions(priority=priority,
                                      arrival_seconds=arrival))
                report = await client.drain()
            payload = report.to_dict()
            payload["pool"] = None  # wall figures live under pool
            return payload

        first = asyncio.run(run_once())
        second = asyncio.run(run_once())
        assert first == second
