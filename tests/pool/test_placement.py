"""Placement policies: who gets the next wave, and why.

Deterministic routing: every policy breaks ties on the lowest worker
id, hints pin a wave to a live board (and only a live board), and the
affinity policy reads real per-board ZBT residency state -- no RNG
anywhere in the router.
"""

import pytest

from repro.addresslib import BatchCall, INTRA_BOX3, INTRA_GRAD
from repro.api import EnginePool
from repro.image import ImageFormat, noise_frame
from repro.pool import (LeastLoadedPlacement, ResidencyAffinityPlacement,
                        RoundRobinPlacement)

QCIF = ImageFormat("QCIF", 176, 144)


def _call(seed=0, op=INTRA_GRAD):
    return BatchCall.intra(op, noise_frame(QCIF, seed=seed))


class TestLeastLoaded:
    def test_picks_the_earliest_free_board(self):
        pool = EnginePool.of_engines(3,
                                     placement=LeastLoadedPlacement())
        pool.workers[0].busy_until = 5.0
        pool.workers[1].busy_until = 1.0
        pool.workers[2].busy_until = 3.0
        assert pool.place([_call()]).worker_id == 1

    def test_ties_break_on_lowest_worker_id(self):
        pool = EnginePool.of_engines(3,
                                     placement=LeastLoadedPlacement())
        assert pool.place([_call()]).worker_id == 0

    def test_dispatch_spreads_backlog(self):
        pool = EnginePool.of_engines(2,
                                     placement=LeastLoadedPlacement())
        boards = [pool.dispatch([_call(seed=i)]).worker_id
                  for i in range(4)]
        assert boards == [0, 1, 0, 1]


class TestRoundRobin:
    def test_cycles_through_alive_boards(self):
        pool = EnginePool.of_engines(3, placement=RoundRobinPlacement())
        boards = [pool.place([_call()]).worker_id for _ in range(5)]
        assert boards == [0, 1, 2, 0, 1]

    def test_skips_failed_boards(self):
        pool = EnginePool.of_engines(3, placement=RoundRobinPlacement())
        pool.workers[1].failed = True
        boards = [pool.place([_call()]).worker_id for _ in range(4)]
        assert 1 not in boards


class TestResidencyAffinity:
    def test_resident_frames_attract_their_board(self):
        pool = EnginePool.of_engines(2)  # affinity is the default
        frame = noise_frame(QCIF, seed=7)
        warm = BatchCall.intra(INTRA_GRAD, frame)
        pool.dispatch([warm])  # lands on board 0, caches the frame
        # Board 0 is now the *busier* board, yet a call reusing the
        # cached frame must still route to it: affinity beats load.
        follow_up = BatchCall.intra(INTRA_BOX3, frame)
        assert pool.workers[0].affinity_score([follow_up]) == 1
        assert pool.workers[1].affinity_score([follow_up]) == 0
        assert pool.place([follow_up]).worker_id == 0

    def test_cold_frames_fall_back_to_load(self):
        pool = EnginePool.of_engines(2)
        pool.dispatch([_call(seed=1)])  # board 0 busy
        assert pool.place([_call(seed=2)]).worker_id == 1

    def test_policy_name_lands_in_the_report(self):
        pool = EnginePool.of_engines(2)
        assert pool.report().placement == (
            ResidencyAffinityPlacement().name)


class TestHints:
    def test_hint_pins_a_wave_to_its_board(self):
        pool = EnginePool.of_engines(3)
        dispatch = pool.dispatch([_call()], hint=2)
        assert dispatch.worker_id == 2
        assert pool.hinted_waves == 1

    def test_dead_hint_falls_back_to_the_policy(self):
        pool = EnginePool.of_engines(3)
        pool.workers[2].failed = True
        dispatch = pool.dispatch([_call()], hint=2)
        assert dispatch.worker_id != 2
        assert pool.hinted_waves == 0

    def test_unknown_hint_falls_back_to_the_policy(self):
        pool = EnginePool.of_engines(2)
        assert pool.dispatch([_call()], hint=9).worker_id in (0, 1)
        assert pool.hinted_waves == 0


class TestConstruction:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            EnginePool([])

    def test_zero_board_pool_rejected(self):
        with pytest.raises(ValueError):
            EnginePool.of_engines(0)
