"""Pool-vs-serial bit-exactness over the randomized corpus.

The pool shards waves across real boards, each with its own library,
driver books and residency banks -- but routing is placement, never
compute: every ticket's result must be exactly what a direct serial
``VectorExecutor`` call on the same frames produces, for any pool size.
Same 0xFA57 corpus recipe as the scheduler/fast-path/service suites.
"""

import random

import pytest

from repro.addresslib import INTER_OPS, INTRA_OPS, BatchCall, VectorExecutor
from repro.api import EnginePool, EngineService
from repro.image import ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26
POOL_SIZES = (1, 2, 3, 4)


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


class TestPooledCorpusEquivalence:
    @pytest.mark.parametrize("shard", range(SHARDS))
    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_pooled_service_matches_serial_executor(self, pool_size,
                                                    shard):
        """All 208 corpus cases, every pool size: bit-exact results."""
        rng = random.Random(0xFA57 + shard)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]
        service = EngineService(pool=EnginePool.of_engines(pool_size),
                                queue_depth=len(calls))
        tickets = [service.submit(call) for call in calls]
        report = service.drain()
        assert report.completed == len(calls)
        assert report.rejected == 0 and report.timed_out == 0
        for call, ticket in zip(calls, tickets):
            _assert_same(ticket.result(), _serial_reference(call))

    @pytest.mark.parametrize("pool_size", POOL_SIZES)
    def test_direct_dispatch_matches_serial_executor(self, pool_size):
        """Raw pool dispatch (no service): same bit-exactness."""
        rng = random.Random(0xFA57)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]
        with EnginePool.of_engines(pool_size) as pool:
            clock = 0.0
            for call in calls:
                dispatch = pool.dispatch([call], not_before=clock)
                clock = dispatch.end_seconds
                _assert_same(dispatch.results[0],
                             _serial_reference(call))
            assert pool.waves_dispatched == len(calls)

    def test_pool_sizes_agree_with_each_other(self):
        """The same batch drained at every size: identical tickets."""
        rng = random.Random(0xFA57 + 5)
        calls = [_random_batch_call(rng) for _ in range(12)]
        outcomes = []
        for pool_size in POOL_SIZES:
            service = EngineService(
                pool=EnginePool.of_engines(pool_size),
                queue_depth=len(calls))
            tickets = [service.submit(call) for call in calls]
            service.drain()
            outcomes.append([t.result() for t in tickets])
        for results in outcomes[1:]:
            for got, want in zip(results, outcomes[0]):
                _assert_same(got, want)

    def test_pool_clock_speeds_up_with_size(self):
        """Sharding shrinks the modeled makespan monotonically."""
        rng = random.Random(0xFA57 + 9)
        calls = [_random_batch_call(rng) for _ in range(24)]
        clocks = []
        for pool_size in (1, 2, 4):
            service = EngineService(
                pool=EnginePool.of_engines(pool_size),
                queue_depth=len(calls), max_batch=4)
            for call in calls:
                service.submit(call)
            report = service.drain()
            assert report.completed == len(calls)
            clocks.append(report.clock_seconds)
        assert clocks[0] >= clocks[1] >= clocks[2]
        assert clocks[0] > clocks[2]
