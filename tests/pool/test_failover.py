"""Failover: a deadlocked board fails out, its wave re-runs whole.

A board that raises :class:`EngineDeadlock` mid-wave leaves rotation;
the wave re-places among the survivors and re-runs from scratch, so
failover never shows up in the functional results.  A pool with no
survivors propagates the deadlock.
"""

import random

import pytest

from repro.addresslib import (INTER_OPS, INTRA_OPS, BatchCall,
                              VectorExecutor)
from repro.api import EnginePool, EngineService
from repro.core import EngineDeadlock
from repro.image import ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)


def _random_batch_call(rng):
    """One corpus case (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


def _fail_always(worker):
    """Make ``worker`` deadlock on every wave it is handed."""
    def boom(calls):
        raise EngineDeadlock("injected board failure")
    worker.run_wave = boom


class TestFailover:
    def test_wave_requeues_to_the_survivor(self):
        rng = random.Random(0xFA57 + 13)
        calls = [_random_batch_call(rng) for _ in range(4)]
        pool = EnginePool.of_engines(2)
        _fail_always(pool.workers[0])
        dispatch = pool.dispatch(calls, hint=0)
        assert dispatch.worker_id == 1
        assert dispatch.failovers == 1
        for got, call in zip(dispatch.results, calls):
            _assert_same(got, _serial_reference(call))

    def test_failed_board_leaves_rotation(self):
        pool = EnginePool.of_engines(2)
        _fail_always(pool.workers[0])
        pool.dispatch([_random_batch_call(random.Random(1))], hint=0)
        assert pool.workers[0].failed
        assert [w.worker_id for w in pool.alive()] == [1]
        # Subsequent waves never touch the dead board again.
        dispatch = pool.dispatch(
            [_random_batch_call(random.Random(2))])
        assert dispatch.worker_id == 1 and dispatch.failovers == 0

    def test_requeue_books_are_kept(self):
        rng = random.Random(0xFA57 + 17)
        calls = [_random_batch_call(rng) for _ in range(3)]
        pool = EnginePool.of_engines(2)
        _fail_always(pool.workers[0])
        pool.dispatch(calls, hint=0)
        assert pool.failovers == 1
        assert pool.calls_requeued == len(calls)
        assert pool.workers[0].calls_requeued == len(calls)
        report = pool.report()
        assert report.failovers == 1
        assert report.calls_requeued == len(calls)
        assert report.workers[0].failed

    def test_no_survivors_propagates_the_deadlock(self):
        pool = EnginePool.of_engines(2)
        for worker in pool.workers:
            _fail_always(worker)
        with pytest.raises(EngineDeadlock):
            pool.dispatch([_random_batch_call(random.Random(3))])
        with pytest.raises(EngineDeadlock):
            pool.place([])  # a dead pool cannot place anything

    def test_service_results_survive_a_mid_drain_failover(self):
        """End to end: board 0 dies under the service, answers hold."""
        rng = random.Random(0xFA57 + 19)
        calls = [_random_batch_call(rng) for _ in range(10)]
        pool = EnginePool.of_engines(2)
        _fail_always(pool.workers[0])
        service = EngineService(pool=pool, queue_depth=len(calls))
        tickets = [service.submit(call) for call in calls]
        report = service.drain()
        assert report.completed == len(calls)
        for call, ticket in zip(calls, tickets):
            _assert_same(ticket.result(), _serial_reference(call))
        assert report.pool is not None
        assert report.pool.failovers >= 1
        assert report.pool.workers[0].failed
        assert report.pool.workers[1].calls_routed == len(calls)

    def test_failover_is_result_invariant_vs_healthy_pool(self):
        """The same batch with and without a failover: same answers."""
        rng = random.Random(0xFA57 + 23)
        calls = [_random_batch_call(rng) for _ in range(8)]

        healthy = EngineService(pool=EnginePool.of_engines(2),
                                queue_depth=len(calls))
        healthy_tickets = [healthy.submit(call) for call in calls]
        healthy.drain()

        degraded_pool = EnginePool.of_engines(2)
        _fail_always(degraded_pool.workers[1])
        degraded = EngineService(pool=degraded_pool,
                                 queue_depth=len(calls))
        degraded_tickets = [degraded.submit(call) for call in calls]
        degraded.drain()

        for healthy_t, degraded_t in zip(healthy_tickets,
                                         degraded_tickets):
            _assert_same(degraded_t.result(), healthy_t.result())


class TestSerialReferenceStaysHonest:
    def test_reference_really_is_the_vector_executor(self):
        call = _random_batch_call(random.Random(29))
        want = _serial_reference(call)
        if call.reduce_to_scalar:
            assert isinstance(want, int)
        else:
            assert want.equals(VectorExecutor.intra(
                call.op, call.frames[0], call.channels)
                if len(call.frames) == 1 else VectorExecutor.inter(
                    call.op, call.frames[0], call.frames[1],
                    call.channels))
