"""Call chaining: reusing on-board frames across AddressLib calls."""

import numpy as np
import pytest

from repro.addresslib import (AddressLib, INTER_ABSDIFF, INTRA_BOX3,
                              INTRA_GRAD)
from repro.host import AddressEngineDriver, EngineBackend
from repro.image import ImageFormat, noise_frame

FMT = ImageFormat("CH32", 32, 32)


@pytest.fixture
def frames():
    return noise_frame(FMT, seed=61), noise_frame(FMT, seed=62)


def chained_lib(simulate=False):
    return AddressLib(EngineBackend(
        AddressEngineDriver(simulate=simulate), chain_frames=True))


class TestResidencyDetection:
    def test_repeated_intra_input_is_resident(self, frames):
        lib = chained_lib()
        frame, _ = frames
        lib.intra(INTRA_GRAD, frame)
        assert lib.log.records[-1].extra["resident_inputs"] == 0
        lib.intra(INTRA_BOX3, frame)
        assert lib.log.records[-1].extra["resident_inputs"] == 1

    def test_result_reuse_counts_as_resident(self, frames):
        lib = chained_lib()
        frame, _ = frames
        edges = lib.intra(INTRA_GRAD, frame)
        lib.intra(INTRA_BOX3, edges)     # previous result as input
        assert lib.log.records[-1].extra["resident_inputs"] == 1

    def test_fresh_frame_is_not_resident(self, frames):
        lib = chained_lib()
        a, b = frames
        lib.intra(INTRA_GRAD, a)
        lib.intra(INTRA_GRAD, b)
        assert lib.log.records[-1].extra["resident_inputs"] == 0

    def test_layout_change_invalidates_residency(self, frames):
        """An intra-resident frame lives across both bank pairs; an
        inter call needs it confined to one pair -- reship."""
        lib = chained_lib()
        a, b = frames
        lib.intra(INTRA_GRAD, a)
        lib.inter(INTER_ABSDIFF, a, b)
        assert lib.log.records[-1].extra["resident_inputs"] == 0

    def test_inter_keeps_reference_resident(self, frames):
        """The GME pattern: same reference frame across SAD calls."""
        lib = chained_lib()
        a, b = frames
        lib.inter_reduce(INTER_ABSDIFF, a, b)
        lib.inter_reduce(INTER_ABSDIFF, a, b)
        assert lib.log.records[-1].extra["resident_inputs"] == 2

    def test_chaining_off_by_default(self, frames):
        lib = AddressLib(EngineBackend())
        frame, _ = frames
        lib.intra(INTRA_GRAD, frame)
        lib.intra(INTRA_BOX3, frame)
        assert lib.log.records[-1].extra["resident_inputs"] == 0


class TestFrameResidencyCache:
    def test_counters_classify_each_input(self, frames):
        lib = chained_lib()
        a, b = frames
        lib.inter_reduce(INTER_ABSDIFF, a, b)      # both miss
        lib.inter_reduce(INTER_ABSDIFF, a, b)      # both hit
        cache = lib.backend.residency
        assert cache.misses == 2
        assert cache.hits == 2
        assert cache.result_reuses == 0

    def test_result_reuse_counter(self, frames):
        lib = chained_lib()
        frame, _ = frames
        edges = lib.intra(INTRA_GRAD, frame)
        lib.intra(INTRA_BOX3, edges)
        assert lib.backend.residency.result_reuses == 1

    def test_identity_not_equality(self, frames):
        """An equal-valued copy is different memory: it must ship."""
        lib = chained_lib()
        frame, _ = frames
        lib.intra(INTRA_GRAD, frame)
        clone = noise_frame(FMT, seed=61)           # same pixels, new object
        lib.intra(INTRA_GRAD, clone)
        assert lib.log.records[-1].extra["resident_inputs"] == 0

    def test_invalidate_forgets_board_state(self, frames):
        lib = chained_lib()
        frame, _ = frames
        lib.intra(INTRA_GRAD, frame)
        lib.backend.residency.invalidate()
        lib.intra(INTRA_BOX3, frame)
        assert lib.log.records[-1].extra["resident_inputs"] == 0


class TestChainedTiming:
    def test_resident_call_is_cheaper(self, frames):
        lib = chained_lib()
        frame, _ = frames
        lib.intra(INTRA_GRAD, frame)
        cold = lib.log.records[-1].extra["call_seconds"]
        lib.intra(INTRA_BOX3, frame)
        warm = lib.log.records[-1].extra["call_seconds"]
        assert warm < 0.75 * cold

    def test_resident_call_ships_fewer_words(self, frames):
        lib = chained_lib()
        a, b = frames
        lib.inter_reduce(INTER_ABSDIFF, a, b)
        lib.inter_reduce(INTER_ABSDIFF, a, b)
        first = lib.log.records[-2].extra["pci_words"]
        second = lib.log.records[-1].extra["pci_words"]
        assert second == 2          # only the scalar comes back
        assert first == 4 * FMT.pixels + 2

    def test_result_reuse_cheaper_than_roundtrip(self, frames):
        frame, _ = frames
        chained = chained_lib()
        plain = AddressLib(EngineBackend())
        for lib in (chained, plain):
            edges = lib.intra(INTRA_GRAD, frame)
            lib.intra(INTRA_BOX3, edges)
        chained_second = chained.log.records[-1].extra["call_seconds"]
        plain_second = plain.log.records[-1].extra["call_seconds"]
        assert chained_second < plain_second


class TestChainedCorrectness:
    def test_results_identical_with_and_without_chaining(self, frames):
        a, b = frames
        outputs = []
        for backend in (EngineBackend(),
                        EngineBackend(chain_frames=True)):
            lib = AddressLib(backend)
            edges = lib.intra(INTRA_GRAD, a)
            smooth = lib.intra(INTRA_BOX3, edges)
            sad = lib.inter_reduce(INTER_ABSDIFF, smooth, b)
            outputs.append((smooth, sad))
        assert outputs[0][0].equals(outputs[1][0])
        assert outputs[0][1] == outputs[1][1]

    def test_simulated_chained_intra_matches_golden(self, frames):
        """The cycle model executes the resident call (preloaded banks)
        and still produces the exact image."""
        lib = chained_lib(simulate=True)
        frame, _ = frames
        lib.intra(INTRA_GRAD, frame)
        result = lib.intra(INTRA_BOX3, frame)
        assert lib.log.records[-1].extra["resident_inputs"] == 1
        from repro.addresslib import VectorExecutor
        golden = VectorExecutor.intra(INTRA_BOX3, frame)
        assert np.array_equal(result.y, golden.y)

    def test_simulated_result_reuse_falls_back_to_shipping(self, frames):
        """The cycle model has no result-bank mover: reusing a result as
        input under simulation re-ships it (correctness preserved)."""
        lib = chained_lib(simulate=True)
        frame, _ = frames
        edges = lib.intra(INTRA_GRAD, frame)
        lib.intra(INTRA_BOX3, edges)
        assert lib.log.records[-1].extra["resident_inputs"] == 0
