"""The host driver: fast vs simulated submission paths."""

import pytest

from repro.addresslib import INTER_ABSDIFF, INTRA_GRAD
from repro.core import inter_config, intra_config
from repro.host import AddressEngineDriver
from repro.image import noise_frame


class TestFastPath:
    def test_intra_result_matches_simulated(self, fmt32, frame32):
        config = intra_config(INTRA_GRAD, fmt32)
        fast = AddressEngineDriver().submit(config, frame32)
        slow = AddressEngineDriver(simulate=True).submit(config, frame32)
        assert fast.frame.equals(slow.frame)

    def test_fast_timing_matches_simulated(self, fmt32, frame32):
        config = intra_config(INTRA_GRAD, fmt32)
        fast = AddressEngineDriver().submit(config, frame32)
        slow = AddressEngineDriver(simulate=True).submit(config, frame32)
        assert fast.board_seconds == pytest.approx(slow.board_seconds)
        assert fast.call_seconds == pytest.approx(slow.call_seconds)
        assert fast.run is None and slow.run is not None

    def test_reduce_scalar(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True)
        result = AddressEngineDriver().submit(config, frame32, frame32_b)
        assert result.frame is None
        assert result.scalar is not None

    def test_pci_word_accounting(self, fmt32, frame32):
        config = intra_config(INTRA_GRAD, fmt32)
        result = AddressEngineDriver().submit(config, frame32)
        assert result.pci_words == 4 * fmt32.pixels

    def test_interrupt_and_call_counters(self, fmt32, frame32):
        driver = AddressEngineDriver()
        config = intra_config(INTRA_GRAD, fmt32)
        driver.submit(config, frame32)
        driver.submit(config, frame32)
        assert driver.calls_submitted == 2
        # strips + readback + completion per call.
        assert driver.interrupts_serviced == 2 * (fmt32.strips + 2)
