"""The driver's opt-in pre-flight hook: rejects-before-execute."""

from __future__ import annotations

import pytest

from repro.addresslib import INTRA_BOX3, INTRA_GRAD
from repro.analysis import ProgramCheckError
from repro.core import AddressEngine, intra_config
from repro.host import AddressEngineDriver
from repro.image import ImageFormat, noise_frame

FMT = ImageFormat("T32", 32, 32)
BIG = ImageFormat("4CIF", 704, 576)


class TestPreflight:
    def test_off_by_default(self):
        driver = AddressEngineDriver()
        assert not driver.preflight

    def test_clean_call_dispatches(self):
        driver = AddressEngineDriver(preflight=True)
        result = driver.submit(intra_config(INTRA_BOX3, FMT),
                               noise_frame(FMT, seed=1))
        assert result.frame is not None
        assert driver.calls_submitted == 1
        assert driver.calls_rejected == 0

    def test_capacity_error_rejected_before_dispatch(self):
        driver = AddressEngineDriver(preflight=True)
        with pytest.raises(ProgramCheckError) as excinfo:
            driver.submit(intra_config(INTRA_BOX3, BIG),
                          noise_frame(BIG, seed=1))
        assert excinfo.value.report.by_rule("CAP001")
        assert driver.calls_submitted == 0
        assert driver.calls_rejected == 1

    def test_ablated_engine_params_rejected(self):
        driver = AddressEngineDriver(
            preflight=True, simulate=True,
            engine=AddressEngine(plc_ticks_per_cycle=0))
        with pytest.raises(ProgramCheckError) as excinfo:
            driver.submit(intra_config(INTRA_BOX3, FMT),
                          noise_frame(FMT, seed=1))
        assert excinfo.value.report.by_rule("LIV002")

    def test_fallback_info_does_not_reject(self):
        driver = AddressEngineDriver(preflight=True)
        result = driver.submit(intra_config(INTRA_GRAD, FMT),
                               noise_frame(FMT, seed=1))
        assert result.frame is not None

    def test_explicit_check_without_submit(self):
        driver = AddressEngineDriver()
        driver.check(intra_config(INTRA_BOX3, FMT))
        with pytest.raises(ProgramCheckError):
            driver.check(intra_config(INTRA_BOX3, BIG))
        assert driver.calls_submitted == 0
