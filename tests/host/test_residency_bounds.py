"""Bounding the FrameResidencyCache: release, generations, reporting.

The cache holds strong references to the frames it models as resident
in the ZBT banks.  Unbounded, a long-running host would pin every frame
it ever chained; these tests cover the two bounding mechanisms --
explicit :meth:`release` and ``max_age`` generation expiry -- plus the
surfacing of the cache counters in :class:`RunReport`.
"""

from repro.addresslib import (ChannelSet, INTER_ABSDIFF, INTRA_BOX3,
                              INTRA_SOBEL_X)
from repro.core import inter_config, intra_config
from repro.host import (EngineBackend, FrameResidencyCache,
                        engine_platform, software_platform)
from repro.image import ImageFormat, noise_frame

QCIF = ImageFormat("QCIF", 176, 144)


class TestRelease:
    def test_released_input_no_longer_resident(self):
        backend = EngineBackend(chain_frames=True)
        frame = noise_frame(QCIF, seed=1)
        backend.intra(INTRA_BOX3, frame, ChannelSet.Y)
        assert backend.residency.held_frames == 2  # input + result
        backend.residency.release(frame)
        assert backend.residency.evictions == 1
        flags, copy_cycles = backend.residency.plan(
            intra_config(INTRA_BOX3, QCIF), [frame])
        assert flags == [False]
        assert copy_cycles == 0

    def test_release_keeps_slot_indices(self):
        cache = FrameResidencyCache()
        a = noise_frame(QCIF, seed=2)
        b = noise_frame(QCIF, seed=3)
        result = noise_frame(QCIF, seed=4)
        config = inter_config(INTER_ABSDIFF, QCIF)
        cache.record_call(config, [a, b], result)
        cache.release(a)
        # Slot 1 must still hit even though slot 0 was dropped.
        flags, _ = cache.plan(config, [b, b])
        assert flags[0] is False

    def test_release_of_result_counts_eviction(self):
        cache = FrameResidencyCache()
        config = intra_config(INTRA_BOX3, QCIF)
        frame = noise_frame(QCIF, seed=5)
        result = noise_frame(QCIF, seed=6)
        cache.record_call(config, [frame], result)
        assert cache.held_frames == 2
        cache.release(result)
        assert cache.held_frames == 1
        assert cache.evictions == 1


class TestGenerations:
    def test_state_expires_after_max_age_generations(self):
        cache = FrameResidencyCache(max_age=2)
        config = intra_config(INTRA_BOX3, QCIF)
        frame = noise_frame(QCIF, seed=7)
        result = noise_frame(QCIF, seed=8)
        cache.record_call(config, [frame], result)
        cache.new_generation()
        flags, _ = cache.plan(config, [frame])
        assert flags == [True]  # one generation old: still resident
        cache.new_generation()
        flags, _ = cache.plan(config, [frame])
        assert flags == [False]  # two generations old: expired
        assert cache.evictions == 2
        assert cache.held_frames == 0

    def test_record_refreshes_age(self):
        cache = FrameResidencyCache(max_age=1)
        config = intra_config(INTRA_BOX3, QCIF)
        frame = noise_frame(QCIF, seed=9)
        cache.record_call(config, [frame], None)
        cache.new_generation()
        cache.record_call(config, [frame], None)  # re-recorded: fresh
        flags, _ = cache.plan(config, [frame])
        assert flags == [True]

    def test_no_max_age_never_expires(self):
        cache = FrameResidencyCache()
        config = intra_config(INTRA_BOX3, QCIF)
        frame = noise_frame(QCIF, seed=10)
        cache.record_call(config, [frame], None)
        for _ in range(100):
            cache.new_generation()
        flags, _ = cache.plan(config, [frame])
        assert flags == [True]
        assert cache.evictions == 0


class TestRunReportSurfacing:
    def test_report_carries_residency_counters(self):
        backend = EngineBackend(chain_frames=True)
        runtime = engine_platform(backend=backend)
        frame = noise_frame(QCIF, seed=11)
        runtime.lib.intra(INTRA_BOX3, frame)
        runtime.lib.intra(INTRA_SOBEL_X, frame)  # same input: a hit
        report = runtime.report()
        assert report.residency_hits == 1
        assert report.residency_misses == 1
        assert report.residency_result_reuses == 0
        backend.residency.release(frame)
        assert runtime.report().residency_evictions == 1

    def test_software_platform_reports_zero_counters(self):
        runtime = software_platform()
        frame = noise_frame(QCIF, seed=12)
        runtime.lib.intra(INTRA_BOX3, frame)
        report = runtime.report()
        assert report.residency_hits == 0
        assert report.residency_misses == 0
        assert report.residency_evictions == 0
