"""The pipelined call scheduler: bit-exactness, determinism, accounting.

The scheduler may execute calls in worker processes and in any
completion order, but the results handed back must be *indistinguishable*
from serial execution: identical frames, identical scalars, identical
call records.  This harness drives the same randomized corpus recipe as
the fast-path equivalence suite (seed family 0xFA57) through batched
and serial execution and compares everything.
"""

import random

import pytest

from repro.addresslib import (AddressLib, BatchCall, INTER_ABSDIFF,
                              INTER_ADD, INTER_OPS, INTRA_BOX3, INTRA_GRAD,
                              INTRA_MEDIAN3, INTRA_OPS, INTRA_SOBEL_X,
                              INTRA_SOBEL_Y, SoftwareBackend, VectorExecutor,
                              dependency_edges, dependency_levels,
                              kernel_by_name, threshold_op, trace_program)
from repro.host import CallScheduler, EngineBackend
from repro.image import ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26

QCIF = ImageFormat("QCIF", 176, 144)


@pytest.fixture(scope="module")
def scheduler():
    with CallScheduler(max_workers=2) as sched:
        yield sched


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


class TestCorpusEquivalence:
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_scheduled_matches_serial_executor(self, shard, scheduler):
        rng = random.Random(0xFA57 + shard)
        calls = [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]
        lib = AddressLib(SoftwareBackend())
        results = lib.run_batch(calls, scheduler=scheduler)
        assert len(results) == len(calls)
        for call, got in zip(calls, results):
            _assert_same(got, _serial_reference(call))

    def test_deterministic_across_worker_counts(self):
        rng = random.Random(0xFA57)
        calls = [_random_batch_call(rng) for _ in range(12)]
        reference = None
        for workers in range(1, 5):
            with CallScheduler(max_workers=workers) as sched:
                lib = AddressLib(SoftwareBackend())
                results = lib.run_batch(calls, scheduler=sched)
            if reference is None:
                reference = results
            else:
                for got, want in zip(results, reference):
                    _assert_same(got, want)


class TestRecordParity:
    def _calls(self):
        a = noise_frame(QCIF, seed=1)
        b = noise_frame(QCIF, seed=2)
        return [BatchCall.intra(INTRA_SOBEL_X, a),
                BatchCall.intra(INTRA_SOBEL_Y, a),
                BatchCall.inter(INTER_ADD, a, b),
                BatchCall.inter_reduce(INTER_ABSDIFF, a, b)]

    def test_software_records_identical(self, scheduler):
        serial = AddressLib(SoftwareBackend())
        batched = AddressLib(SoftwareBackend())
        serial_results = serial.run_batch(self._calls())
        batched_results = batched.run_batch(self._calls(),
                                            scheduler=scheduler)
        for got, want in zip(batched_results, serial_results):
            _assert_same(got, want)
        assert len(serial.log.records) == len(batched.log.records)
        for rs, rb in zip(serial.log.records, batched.log.records):
            assert rs.op_name == rb.op_name
            assert rs.mode == rb.mode
            assert rs.pixels == rb.pixels
            assert vars(rs.profile) == vars(rb.profile)

    def test_engine_pricing_identical(self, scheduler):
        serial = AddressLib(EngineBackend())
        batched = AddressLib(EngineBackend())
        serial_results = serial.run_batch(self._calls())
        batched_results = batched.run_batch(self._calls(),
                                            scheduler=scheduler)
        for got, want in zip(batched_results, serial_results):
            _assert_same(got, want)
        for rs, rb in zip(serial.log.records, batched.log.records):
            assert rs.op_name == rb.op_name
            assert rs.extra["call_seconds"] == pytest.approx(
                rb.extra["call_seconds"], abs=0.0)
            assert rs.extra["board_seconds"] == pytest.approx(
                rb.extra["board_seconds"], abs=0.0)
            assert rs.extra["pci_words"] == rb.extra["pci_words"]
        assert (serial.backend.driver.calls_submitted
                == batched.backend.driver.calls_submitted)
        assert (serial.backend.driver.interrupts_serviced
                == batched.backend.driver.interrupts_serviced)

    def test_parallel_wave_invalidates_residency(self, scheduler):
        backend = EngineBackend(chain_frames=True)
        lib = AddressLib(backend)
        frame = noise_frame(QCIF, seed=3)
        lib.intra(INTRA_BOX3, frame)
        assert backend.residency.held_frames > 0
        lib.run_batch([BatchCall.intra(INTRA_SOBEL_X, frame),
                       BatchCall.intra(INTRA_SOBEL_Y, frame)],
                      scheduler=scheduler)
        # The wave dropped the cached bank state, and batched records
        # never claim residency.
        batch_records = lib.log.records[-2:]
        assert all(r.extra["resident_inputs"] == 0.0
                   for r in batch_records)

    def test_single_call_batch_stays_serial(self, scheduler):
        lib = AddressLib(SoftwareBackend())
        frame = noise_frame(QCIF, seed=4)
        before = scheduler.total.calls
        results = lib.run_batch([BatchCall.intra(INTRA_BOX3, frame)],
                                scheduler=scheduler)
        assert results[0].equals(VectorExecutor.intra(INTRA_BOX3, frame))
        # One call has nothing to overlap with: no scheduler involvement.
        assert scheduler.total.calls == before


class TestOpShipping:
    def test_registry_ops_ship_to_workers(self, scheduler):
        frame = noise_frame(QCIF, seed=5)
        assert CallScheduler._op_token(
            BatchCall.intra(INTRA_BOX3, frame)) == "intra_box3"
        kernel = kernel_by_name("gaussian3")
        assert CallScheduler._op_token(
            BatchCall.intra(kernel, frame)) == "kernel_gaussian3"

    def test_parameterized_op_runs_inline(self, scheduler):
        # threshold_op builds a fresh op: no registry identity, so the
        # scheduler must not ship it by name.
        frame = noise_frame(QCIF, seed=6)
        call = BatchCall.intra(threshold_op(100), frame)
        assert CallScheduler._op_token(call) is None
        before = scheduler.total.inline_calls
        lib = AddressLib(SoftwareBackend())
        results = lib.run_batch(
            [call, BatchCall.intra(INTRA_BOX3, frame)],
            scheduler=scheduler)
        assert scheduler.total.inline_calls > before
        assert results[0].equals(
            VectorExecutor.intra(call.op, frame))

    def test_impostor_op_with_registry_name_runs_inline(self):
        # A custom op that *claims* a registry name must execute its own
        # code, never the registry's.
        import dataclasses
        impostor = dataclasses.replace(threshold_op(9), name="intra_box3")
        frame = noise_frame(QCIF, seed=7)
        call = BatchCall.intra(impostor, frame)
        assert CallScheduler._op_token(call) is None


class TestProgramExecution:
    def _program_and_reference(self):
        src = noise_frame(QCIF, seed=8)

        def body(lib, frame):
            gx = lib.intra(INTRA_SOBEL_X, frame)
            gy = lib.intra(INTRA_SOBEL_Y, frame)
            mag = lib.inter(INTER_ADD, gx, gy)
            smooth = lib.intra(INTRA_BOX3, mag)
            lib.inter_reduce(INTER_ABSDIFF, smooth, frame)
            return smooth

        program = trace_program("edge_energy", body, src)
        gx = VectorExecutor.intra(INTRA_SOBEL_X, src)
        gy = VectorExecutor.intra(INTRA_SOBEL_Y, src)
        mag = VectorExecutor.inter(INTER_ADD, gx, gy)
        smooth = VectorExecutor.intra(INTRA_BOX3, mag)
        sad = VectorExecutor.inter_reduce(INTER_ABSDIFF, smooth, src)
        return program, src, smooth, sad

    def test_dependency_structure(self):
        program, _, _, _ = self._program_and_reference()
        assert dependency_edges(program) == [(0, 2), (1, 2), (2, 3),
                                             (3, 4)]
        assert dependency_levels(program) == [[0, 1], [2], [3], [4]]

    def test_run_program_bit_exact(self, scheduler):
        program, src, smooth, sad = self._program_and_reference()
        outcome = scheduler.run_program(program, [src])
        assert outcome.results(program)[0].equals(smooth)
        assert outcome.scalars == {4: sad}

    def test_run_program_rejects_wrong_arity(self, scheduler):
        program, src, _, _ = self._program_and_reference()
        with pytest.raises(ValueError):
            scheduler.run_program(program, [src, src])


class TestModeledTiming:
    def test_modeled_pipelined_never_exceeds_serial(self, scheduler):
        rng = random.Random(0xFA57 + 99)
        calls = [_random_batch_call(rng) for _ in range(16)]
        lib = AddressLib(SoftwareBackend())
        lib.run_batch(calls, scheduler=scheduler)
        report = scheduler.last_report
        assert report is not None
        assert (report.modeled_pipelined_seconds
                <= report.modeled_serial_seconds + 1e-12)
        assert report.modeled_speedup >= 1.0

    def test_many_workers_shrink_makespan(self):
        frame = noise_frame(QCIF, seed=9)
        calls = [BatchCall.intra(INTRA_BOX3, frame) for _ in range(16)]
        makespans = []
        for workers in (1, 4):
            sched = CallScheduler(max_workers=workers)
            serial, pipelined = sched._modeled_wave(calls)
            makespans.append(pipelined)
            assert pipelined <= serial + 1e-12
        assert makespans[1] < makespans[0] / 3.0


class TestInlineFallback:
    def test_broken_pool_still_returns_exact_results(self):
        sched = CallScheduler(max_workers=2)
        sched._pool_broken = True  # simulate a dead worker pool
        frame = noise_frame(QCIF, seed=10)
        lib = AddressLib(SoftwareBackend())
        results = lib.run_batch(
            [BatchCall.intra(INTRA_BOX3, frame),
             BatchCall.intra(INTRA_GRAD, frame),
             BatchCall.intra(INTRA_MEDIAN3, frame)],
            scheduler=sched)
        assert results[0].equals(VectorExecutor.intra(INTRA_BOX3, frame))
        assert results[1].equals(VectorExecutor.intra(INTRA_GRAD, frame))
        assert results[2].equals(
            VectorExecutor.intra(INTRA_MEDIAN3, frame))
        assert sched.total.pool_calls == 0
        assert sched.total.inline_calls == 3


class TestTransportPlanning:
    def _calls(self, frame):
        return [BatchCall.intra(INTRA_BOX3, frame),
                BatchCall.intra(INTRA_GRAD, frame),
                BatchCall.intra(INTRA_MEDIAN3, frame)]

    def test_report_carries_phase_breakdown(self):
        frame = noise_frame(QCIF, seed=40)
        with CallScheduler(max_workers=2, bypass="always") as sched:
            lib = AddressLib(SoftwareBackend())
            lib.run_batch(self._calls(frame), scheduler=sched)
            report = sched.last_report
        assert report.ship_seconds >= 0.0
        assert report.compute_seconds > 0.0
        assert report.gather_seconds >= 0.0
        books = report.to_dict()
        for key in ("ship_seconds", "compute_seconds", "gather_seconds",
                    "bypass_calls", "shm_calls", "pickle_calls",
                    "round_trips"):
            assert key in books

    def test_single_cpu_host_bypasses_without_spawning(self, monkeypatch):
        monkeypatch.setattr("repro.host.scheduler.os.cpu_count",
                            lambda: 1)
        frame = noise_frame(QCIF, seed=41)
        with CallScheduler(max_workers=4) as sched:
            lib = AddressLib(SoftwareBackend())
            results = lib.run_batch(self._calls(frame), scheduler=sched)
            # Every call stayed inline and no worker process ever spawned.
            assert sched.total.bypass_calls == 3
            assert sched.total.pool_calls == 0
            assert sched.total.round_trips == 0
        assert results[0].equals(VectorExecutor.intra(INTRA_BOX3, frame))

    def test_bypass_always_never_uses_the_pool(self):
        frame = noise_frame(QCIF, seed=42)
        with CallScheduler(max_workers=2, bypass="always") as sched:
            lib = AddressLib(SoftwareBackend())
            results = lib.run_batch(self._calls(frame), scheduler=sched)
            assert sched.total.bypass_calls == 3
            assert sched.total.pool_calls == 0
        assert results[2].equals(
            VectorExecutor.intra(INTRA_MEDIAN3, frame))

    def test_transport_stats_shape(self):
        with CallScheduler(max_workers=2) as sched:
            stats = sched.transport_stats()
        for key in ("transport", "bypass", "round_trip_s", "round_trips",
                    "pool_calls", "inline_calls", "bypass_calls",
                    "shm_calls", "pickle_calls", "worker_cache_hits",
                    "worker_cache_attaches", "store"):
            assert key in stats

    def test_invalid_modes_rejected(self):
        with pytest.raises(ValueError):
            CallScheduler(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            CallScheduler(bypass="sometimes")
