"""Zero-copy transport: plane store, worker cache, and fallbacks.

The scheduler must hand back *indistinguishable* results whichever way
the bytes travelled: shared-memory handles, whole-frame pickles, the
cost-model inline bypass, or the inline fallback after a worker death.
This harness drives the 0xFA57 corpus recipe through every transport
mode and pins down the segment lifecycle -- registration dedupe,
generation bumps on mutation, weakref release, and leak-free teardown.
"""

import gc
import random

import pytest

from repro.addresslib import (AddressLib, BatchCall, INTER_OPS, INTRA_BOX3,
                              INTRA_GRAD, INTRA_OPS, SoftwareBackend,
                              VectorExecutor)
from repro.host import CallScheduler, SHARED_MEMORY_AVAILABLE
from repro.host import shm
from repro.image import ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26

QCIF = ImageFormat("QCIF", 176, 144)

needs_shm = pytest.mark.skipif(not SHARED_MEMORY_AVAILABLE,
                               reason="no multiprocessing.shared_memory")


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


# ---------------------------------------------------------------------------
# Parent-side plane store
# ---------------------------------------------------------------------------

@needs_shm
class TestPlaneStore:
    def test_register_dedupes_unchanged_frame(self):
        store = shm.PlaneStore()
        frame = noise_frame(QCIF, seed=3)
        try:
            first = store.register(frame)
            second = store.register(frame)
            assert first is second
            assert first.generation == 0
            assert store.segments_created == 1
            assert store.segments_active == 1
        finally:
            store.close()

    def test_mutation_bumps_generation_into_fresh_segment(self):
        store = shm.PlaneStore()
        frame = noise_frame(QCIF, seed=4)
        try:
            first = store.register(frame)
            frame.y[:] ^= 1
            second = store.register(frame)
            assert second.frame_id == first.frame_id
            assert second.generation == first.generation + 1
            assert second.segment_name != first.segment_name
            assert store.generation_bumps == 1
            assert store.segments_created == 2
            assert store.segments_active == 1
            # The stale segment's name is gone.
            with pytest.raises(Exception):
                shm._attach_segment(first.segment_name)
        finally:
            store.close()

    def test_frame_gc_releases_segment(self):
        store = shm.PlaneStore()
        frame = noise_frame(QCIF, seed=5)
        try:
            handle = store.register(frame)
            assert store.segments_active == 1
            del frame
            gc.collect()
            assert store.segments_active == 0
            with pytest.raises(Exception):
                shm._attach_segment(handle.segment_name)
        finally:
            store.close()

    def test_close_releases_everything_and_is_idempotent(self):
        store = shm.PlaneStore()
        frames = [noise_frame(QCIF, seed=s) for s in (6, 7)]
        handles = [store.register(f) for f in frames]
        store.close()
        store.close()
        assert store.segments_active == 0
        for handle in handles:
            with pytest.raises(Exception):
                shm._attach_segment(handle.segment_name)
        # A closed store declines new registrations.
        assert store.register(frames[0]) is None

    def test_broken_store_answers_none(self):
        store = shm.PlaneStore()
        store.broken = True
        assert store.register(noise_frame(QCIF, seed=8)) is None


# ---------------------------------------------------------------------------
# Worker-resident cache (exercised in-process)
# ---------------------------------------------------------------------------

@needs_shm
class TestWorkerCache:
    def teardown_method(self):
        shm.reset_worker_cache()

    def test_attach_caches_and_hits(self):
        store = shm.PlaneStore()
        frame = noise_frame(QCIF, seed=9)
        try:
            handle = store.register(frame)
            first, hit_first = shm.worker_attach(handle)
            again, hit_again = shm.worker_attach(handle)
            assert not hit_first and hit_again
            assert again is first
            assert first.equals(frame)
            assert shm.worker_cache_size() == 1
        finally:
            store.close()

    def test_generation_bump_invalidates_cached_mapping(self):
        store = shm.PlaneStore()
        frame = noise_frame(QCIF, seed=10)
        try:
            old = store.register(frame)
            cached, _ = shm.worker_attach(old)
            before = cached.y.copy()
            frame.y[:] ^= 3
            new = store.register(frame)
            assert new.generation == old.generation + 1
            fresh, hit = shm.worker_attach(new)
            assert not hit
            assert fresh is not cached
            assert fresh.equals(frame)
            # The stale view still reads the *old* content: its mapping
            # survives the unlink until the last view drops.
            assert (cached.y == before).all()
        finally:
            store.close()

    def test_tokens_isolate_stores(self):
        store_a, store_b = shm.PlaneStore(), shm.PlaneStore()
        frame = noise_frame(QCIF, seed=11)
        try:
            handle_a = store_a.register(frame)
            handle_b = store_b.register(frame)
            _, hit_a = shm.worker_attach(handle_a)
            _, hit_b = shm.worker_attach(handle_b)
            assert not hit_a and not hit_b
            assert shm.worker_cache_size() == 2
        finally:
            store_a.close()
            store_b.close()

    def test_reset_clears_cache(self):
        store = shm.PlaneStore()
        frame = noise_frame(QCIF, seed=12)  # held: GC would drop the segment
        try:
            handle = store.register(frame)
            shm.worker_attach(handle)
            shm.reset_worker_cache()
            assert shm.worker_cache_size() == 0
            _, hit = shm.worker_attach(handle)
            assert not hit
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Corpus bit-exactness under every transport mode
# ---------------------------------------------------------------------------

def _corpus_shard(shard):
    rng = random.Random(0xFA57 + shard)
    return [_random_batch_call(rng) for _ in range(CASES_PER_SHARD)]


def _run_corpus(scheduler):
    lib = AddressLib(SoftwareBackend())
    for shard in range(SHARDS):
        calls = _corpus_shard(shard)
        results = lib.run_batch(calls, scheduler=scheduler)
        assert len(results) == len(calls)
        for call, got in zip(calls, results):
            _assert_same(got, _serial_reference(call))


class TestCorpusAcrossTransports:
    @needs_shm
    def test_shared_memory_transport(self):
        with CallScheduler(max_workers=2, bypass="never") as sched:
            _run_corpus(sched)
            stats = sched.transport_stats()
        assert stats["pool_calls"] > 0
        assert stats["shm_calls"] == stats["pool_calls"]
        assert stats["pickle_calls"] == 0

    def test_pickle_transport(self):
        with CallScheduler(max_workers=2, transport="pickle",
                           bypass="never") as sched:
            _run_corpus(sched)
            stats = sched.transport_stats()
        assert stats["pool_calls"] > 0
        assert stats["pickle_calls"] == stats["pool_calls"]
        assert stats["shm_calls"] == 0

    def test_inline_bypass(self):
        with CallScheduler(max_workers=2, bypass="always") as sched:
            _run_corpus(sched)
            stats = sched.transport_stats()
        assert stats["pool_calls"] == 0
        assert stats["bypass_calls"] > 0


# ---------------------------------------------------------------------------
# Failure paths
# ---------------------------------------------------------------------------

@needs_shm
class TestWorkerDeath:
    def test_dead_workers_fall_back_inline_without_leaks(self):
        frame_a = noise_frame(QCIF, seed=20)
        frame_b = noise_frame(QCIF, seed=21)
        calls = [BatchCall.intra(INTRA_BOX3, frame_a),
                 BatchCall.intra(INTRA_GRAD, frame_b)]
        lib = AddressLib(SoftwareBackend())
        sched = CallScheduler(max_workers=2, bypass="never")
        try:
            # One healthy wave to spawn the workers and map segments.
            lib.run_batch(calls, scheduler=sched)
            assert sched.total.pool_calls == 2
            store = sched._resources.store
            assert store is not None
            names = store.active_segment_names()
            assert names
            # Kill every worker process out from under the pool.
            pool = sched._resources.pool
            for process in pool._processes.values():
                process.terminate()
            for process in pool._processes.values():
                process.join()
            results = lib.run_batch(calls, scheduler=sched)
            assert sched._pool_broken
            assert sched.last_report.inline_calls == 2
            assert results[0].equals(
                VectorExecutor.intra(INTRA_BOX3, frame_a))
            assert results[1].equals(
                VectorExecutor.intra(INTRA_GRAD, frame_b))
        finally:
            sched.close()
        # Teardown left no named segments behind.
        for name in names:
            with pytest.raises(Exception):
                shm._attach_segment(name)

    def test_generation_bump_reaches_real_workers(self):
        frame = noise_frame(QCIF, seed=22)
        calls = [BatchCall.intra(INTRA_BOX3, frame),
                 BatchCall.intra(INTRA_GRAD, frame)]
        lib = AddressLib(SoftwareBackend())
        with CallScheduler(max_workers=2, bypass="never") as sched:
            lib.run_batch(calls, scheduler=sched)
            frame.y[:] ^= 5
            results = lib.run_batch(calls, scheduler=sched)
            store_stats = sched.transport_stats()["store"]
            assert store_stats["generation_bumps"] >= 1
        assert results[0].equals(VectorExecutor.intra(INTRA_BOX3, frame))
        assert results[1].equals(VectorExecutor.intra(INTRA_GRAD, frame))


@needs_shm
class TestTeardown:
    def test_abandoned_scheduler_releases_segments(self):
        frame_a = noise_frame(QCIF, seed=23)
        frame_b = noise_frame(QCIF, seed=24)
        lib = AddressLib(SoftwareBackend())
        sched = CallScheduler(max_workers=2, bypass="never")
        lib.run_batch([BatchCall.intra(INTRA_BOX3, frame_a),
                       BatchCall.intra(INTRA_GRAD, frame_b)],
                      scheduler=sched)
        store = sched._resources.store
        names = store.active_segment_names()
        assert names
        del sched
        gc.collect()
        assert store.closed
        for name in names:
            with pytest.raises(Exception):
                shm._attach_segment(name)

    def test_close_is_reentrant(self):
        sched = CallScheduler(max_workers=2)
        sched.close()
        sched.close()
        assert sched.compute_batch([]) == []
