"""The evaluation runtime: per-platform accounting."""

import pytest

from repro.addresslib import INTER_ABSDIFF, INTRA_GRAD, OpProfile
from repro.addresslib.profiling import InstructionCost
from repro.host import Runtime, engine_platform, software_platform
from repro.image import noise_frame
from repro.perf import PENTIUM_4_3000, PENTIUM_M_1600


class TestSoftwarePlatform:
    def test_call_seconds_from_profiles(self, fmt32, frame32):
        runtime = software_platform()
        runtime.lib.intra(INTRA_GRAD, frame32)
        report = runtime.report()
        record = runtime.lib.log.records[-1]
        expected = PENTIUM_M_1600.seconds(record.profile)
        assert report.call_seconds == pytest.approx(expected)
        assert report.intra_calls == 1

    def test_high_level_charges(self, fmt32):
        runtime = software_platform()
        runtime.charge_high_level(1.6e9, mean_cpi=1.0)  # one second
        assert runtime.report().high_level_seconds == pytest.approx(1.0)

    def test_high_level_profile_charge(self):
        runtime = software_platform()
        profile = OpProfile()
        profile.add_cost(InstructionCost(alu=1.6e9))
        runtime.charge_high_level_profile(profile)
        expected = PENTIUM_M_1600.seconds(profile)
        assert runtime.report().high_level_seconds == pytest.approx(
            expected)

    def test_reset(self, fmt32, frame32):
        runtime = software_platform()
        runtime.lib.intra(INTRA_GRAD, frame32)
        runtime.charge_high_level(1e6)
        runtime.reset()
        report = runtime.report()
        assert report.total_calls == 0
        assert report.total_seconds == 0.0


class TestEnginePlatform:
    def test_call_seconds_from_driver(self, fmt32, frame32, frame32_b):
        runtime = engine_platform()
        runtime.lib.inter(INTER_ABSDIFF, frame32, frame32_b)
        report = runtime.report()
        record = runtime.lib.log.records[-1]
        assert report.call_seconds == pytest.approx(
            record.extra["call_seconds"])
        assert report.inter_calls == 1

    def test_high_level_on_p4(self):
        runtime = engine_platform()
        runtime.charge_high_level(3.0e9, mean_cpi=1.0)
        assert runtime.report().high_level_seconds == pytest.approx(1.0)

    def test_platform_names(self):
        assert "Pentium M" in software_platform().platform_name
        assert "AddressEngine" in engine_platform().platform_name


class TestSpeedupDirection:
    def test_engine_beats_software_on_heavy_calls(self, fmt32, frame32):
        """Even without the XM overhead, the coprocessor should not lose
        badly on small frames; with real CIF calls it wins (Table 3)."""
        from repro.gme import xm_cost_model
        from repro.addresslib import SoftwareBackend
        from repro.image import CIF, gradient_frame
        frame = gradient_frame(CIF)
        sw = Runtime(SoftwareBackend(cost_model=xm_cost_model()),
                     PENTIUM_M_1600)
        hw = engine_platform(PENTIUM_4_3000)
        sw.lib.intra(INTRA_GRAD, frame)
        hw.lib.intra(INTRA_GRAD, frame)
        assert (sw.report().call_seconds
                > 2 * hw.report().call_seconds)
