"""The engine-backed AddressLib backend."""

import numpy as np
import pytest

from repro.addresslib import (AddressLib, AddressingMode, ChannelSet,
                              INTER_ABSDIFF, INTRA_GRAD,
                              luma_delta_criterion)
from repro.host import AddressEngineDriver, EngineBackend
from repro.image import blob_frame, noise_frame


class TestEngineBackend:
    def test_supports_only_v1_modes(self):
        backend = EngineBackend()
        assert backend.supports(AddressingMode.INTER)
        assert backend.supports(AddressingMode.INTRA)
        assert not backend.supports(AddressingMode.SEGMENT)

    def test_results_match_software_backend(self, fmt32, frame32,
                                            frame32_b):
        sw = AddressLib()
        hw = AddressLib(EngineBackend())
        assert np.array_equal(
            sw.intra(INTRA_GRAD, frame32).y,
            hw.intra(INTRA_GRAD, frame32).y)
        assert np.array_equal(
            sw.inter(INTER_ABSDIFF, frame32, frame32_b).y,
            hw.inter(INTER_ABSDIFF, frame32, frame32_b).y)
        assert (sw.inter_reduce(INTER_ABSDIFF, frame32, frame32_b)
                == hw.inter_reduce(INTER_ABSDIFF, frame32, frame32_b))

    def test_records_carry_timing(self, fmt32, frame32):
        lib = AddressLib(EngineBackend())
        lib.intra(INTRA_GRAD, frame32)
        record = lib.log.records[-1]
        assert record.extra["call_seconds"] > 0
        assert record.extra["board_seconds"] > 0
        assert record.profile is None

    def test_reduce_marks_op_name(self, fmt32, frame32, frame32_b):
        lib = AddressLib(EngineBackend())
        lib.inter_reduce(INTER_ABSDIFF, frame32, frame32_b)
        assert lib.log.records[-1].op_name.endswith("+reduce")

    def test_special_inter_ops_flagged(self, fmt32, frame32, frame32_b):
        plain = EngineBackend()
        special = EngineBackend(
            special_inter_ops=("inter_absdiff",))
        t_plain = plain.inter_reduce(INTER_ABSDIFF, frame32, frame32_b,
                                     ChannelSet.Y)[1]
        t_special = special.inter_reduce(INTER_ABSDIFF, frame32, frame32_b,
                                         ChannelSet.Y)[1]
        assert (t_special.extra["board_seconds"]
                > t_plain.extra["board_seconds"])

    def test_segment_falls_back_to_software(self, fmt32):
        lib = AddressLib(EngineBackend())
        frame = blob_frame(fmt32, [(16, 16)], radius=6)
        result = lib.segment(frame, [(16, 16)], luma_delta_criterion(8))
        assert result.pixels_processed > 0
        assert lib.log.records[-1].mode is AddressingMode.SEGMENT

    def test_simulated_backend_records_cycles(self, fmt32, frame32):
        lib = AddressLib(EngineBackend(AddressEngineDriver(simulate=True)))
        lib.intra(INTRA_GRAD, frame32)
        record = lib.log.records[-1]
        assert record.extra["cycles"] > 0
        assert record.extra["zbt_pixel_ops"] == 2 * fmt32.pixels
