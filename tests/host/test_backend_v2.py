"""The v2 backend: hardware segment addressing behind AddressLib."""

import numpy as np
import pytest

from repro.addresslib import (AddressLib, AddressingMode, CON_8,
                              luma_delta_criterion, yuv_delta_criterion)
from repro.host import EngineBackendV2
from repro.image import ImageFormat, blob_frame

FMT = ImageFormat("V2T", 48, 48)


@pytest.fixture
def frame():
    return blob_frame(FMT, [(24, 24)], radius=10)


class TestDispatch:
    def test_supports_segment_mode(self):
        backend = EngineBackendV2()
        assert backend.supports(AddressingMode.SEGMENT)
        assert not backend.supports(AddressingMode.SEGMENT_INDEXED)

    def test_hardware_path_taken_for_mappable_criterion(self, frame):
        lib = AddressLib(EngineBackendV2())
        lib.segment(frame, [(24, 24)], luma_delta_criterion(10))
        record = lib.log.records[-1]
        assert record.op_name == "segment_expand_v2"
        assert record.extra["call_seconds"] > 0

    def test_software_fallback_for_arbitrary_criterion(self, frame):
        lib = AddressLib(EngineBackendV2())
        lib.segment(frame, [(24, 24)], yuv_delta_criterion(10, 10))
        assert lib.log.records[-1].op_name == "segment_expand"

    def test_software_fallback_for_other_connectivity(self, frame):
        lib = AddressLib(EngineBackendV2())
        lib.segment(frame, [(24, 24)], luma_delta_criterion(10),
                    connectivity=CON_8)
        assert lib.log.records[-1].op_name == "segment_expand"


class TestEquivalence:
    def test_labels_match_software(self, frame):
        sw = AddressLib()
        hw = AddressLib(EngineBackendV2())
        r_sw = sw.segment(frame, [(24, 24)], luma_delta_criterion(10))
        r_hw = hw.segment(frame, [(24, 24)], luma_delta_criterion(10))
        assert np.array_equal(r_sw.labels, r_hw.labels)
        assert r_sw.pixels_processed == r_hw.pixels_processed

    def test_inter_intra_still_work(self, frame):
        from repro.addresslib import INTRA_GRAD
        lib = AddressLib(EngineBackendV2())
        result = lib.intra(INTRA_GRAD, frame)
        assert result.y.shape == frame.y.shape


class TestResidency:
    def test_second_call_on_same_frame_is_cheaper(self, frame):
        lib = AddressLib(EngineBackendV2())
        lib.segment(frame, [(24, 24)], luma_delta_criterion(10))
        cold = lib.log.records[-1].extra["call_seconds"]
        lib.segment(frame, [(24, 24)], luma_delta_criterion(10))
        warm = lib.log.records[-1].extra["call_seconds"]
        assert warm < 0.6 * cold
        assert lib.log.records[-1].extra["frame_resident"] == 1.0

    def test_different_frame_resets_residency(self, frame):
        other = blob_frame(FMT, [(10, 10)], radius=6)
        lib = AddressLib(EngineBackendV2())
        lib.segment(frame, [(24, 24)], luma_delta_criterion(10))
        lib.segment(other, [(10, 10)], luma_delta_criterion(10))
        assert lib.log.records[-1].extra["frame_resident"] == 0.0
