"""Report formatting helpers."""

import pytest

from repro.perf import format_seconds, format_table, ratio_line


class TestFormatTable:
    def test_alignment_and_structure(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[5], [1234]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("5")
        assert rows[1].endswith("1234")

    def test_float_rendering(self):
        text = format_table(["x"], [[1.0], [2.345]])
        assert "1" in text and "2.35" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_bool_cells(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestFormatSeconds:
    @pytest.mark.parametrize("seconds,expected", [
        (64, "1'04''"),
        (4 * 60 + 35, "4'35''"),
        (12 * 60 + 25, "12'25''"),
        (0.4, "0'00''"),
    ])
    def test_table3_style(self, seconds, expected):
        assert format_seconds(seconds) == expected


class TestRatioLine:
    def test_includes_factor(self):
        line = ratio_line("speedup", measured=4.4, paper=5.0)
        assert "x0.88" in line

    def test_zero_paper_value(self):
        assert "paper=0" in ratio_line("x", 1.0, 0.0)


class TestCallLogExport:
    def test_rows_and_csv(self, tmp_path):
        from repro.addresslib import AddressLib, INTRA_GRAD, INTER_ABSDIFF
        from repro.image import ImageFormat, noise_frame
        from repro.perf import call_log_rows, write_call_log_csv
        fmt = ImageFormat("CSV8", 8, 8)
        lib = AddressLib()
        frame = noise_frame(fmt, seed=1)
        lib.intra(INTRA_GRAD, frame)
        lib.inter_reduce(INTER_ABSDIFF, frame, frame)

        rows = call_log_rows(lib.log)
        assert len(rows) == 2
        assert rows[0]["mode"] == "intra"
        assert rows[1]["op"].endswith("+reduce")
        assert rows[0]["instructions"] > 0

        path = tmp_path / "log.csv"
        assert write_call_log_csv(path, lib.log) == 2
        text = path.read_text().splitlines()
        assert text[0].startswith("index,mode,op")
        assert len(text) == 3

    def test_engine_log_extras_exported(self, tmp_path):
        from repro.addresslib import AddressLib, INTRA_GRAD
        from repro.host import EngineBackend
        from repro.image import ImageFormat, noise_frame
        from repro.perf import call_log_rows
        fmt = ImageFormat("CSV8b", 8, 8)
        lib = AddressLib(EngineBackend())
        lib.intra(INTRA_GRAD, noise_frame(fmt, seed=2))
        rows = call_log_rows(lib.log)
        assert rows[0]["call_seconds"] > 0
        assert rows[0]["instructions"] == ""
