"""Quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.metrics import (best_segment_match, dice, iou, mae, mse,
                                psnr, segment_iou)


class TestErrorMetrics:
    def test_identical_planes(self):
        plane = np.arange(16.0).reshape(4, 4)
        assert mae(plane, plane) == 0.0
        assert mse(plane, plane) == 0.0
        assert psnr(plane, plane) == float("inf")

    def test_constant_offset(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 3.0)
        assert mae(a, b) == 3.0
        assert mse(a, b) == 9.0

    def test_psnr_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        assert psnr(a, b) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros((2, 2)), np.zeros((3, 3)))

    @given(offset=st.floats(0.5, 100))
    @settings(max_examples=20, deadline=None)
    def test_psnr_monotone_in_error(self, offset):
        a = np.zeros((4, 4))
        near = np.full((4, 4), offset)
        far = np.full((4, 4), offset * 2)
        assert psnr(a, near) > psnr(a, far)


class TestMaskMetrics:
    def test_identical_masks(self):
        mask = np.zeros((4, 4), bool)
        mask[:2] = True
        assert iou(mask, mask) == 1.0
        assert dice(mask, mask) == 1.0

    def test_disjoint_masks(self):
        a = np.zeros((4, 4), bool)
        b = np.zeros((4, 4), bool)
        a[0] = True
        b[3] = True
        assert iou(a, b) == 0.0
        assert dice(a, b) == 0.0

    def test_half_overlap(self):
        a = np.zeros((4, 4), bool)
        b = np.zeros((4, 4), bool)
        a[:2] = True          # 8 pixels
        b[1:3] = True         # 8 pixels, 4 shared
        assert iou(a, b) == pytest.approx(4 / 12)
        assert dice(a, b) == pytest.approx(8 / 16)

    def test_empty_masks_agree_vacuously(self):
        empty = np.zeros((4, 4), bool)
        assert iou(empty, empty) == 1.0
        assert dice(empty, empty) == 1.0

    def test_dice_geq_iou(self):
        rng = np.random.default_rng(5)
        a = rng.random((8, 8)) > 0.5
        b = rng.random((8, 8)) > 0.5
        assert dice(a, b) >= iou(a, b)


class TestSegmentMatching:
    def test_segment_iou(self):
        labels = np.zeros((4, 4), np.int32)
        labels[:, 2:] = 1
        assert segment_iou(labels, labels, 0, 0) == 1.0
        assert segment_iou(labels, labels, 0, 1) == 0.0

    def test_best_segment_match(self):
        labels = np.zeros((4, 4), np.int32)
        labels[:, 2:] = 1
        mask = np.zeros((4, 4), bool)
        mask[:, 2:] = True
        mask[0, 0] = True     # one stray pixel
        best_id, score = best_segment_match(labels, mask)
        assert best_id == 1
        assert score == pytest.approx(8 / 9)

    def test_no_segments(self):
        labels = np.full((4, 4), -1, np.int32)
        best_id, score = best_segment_match(labels,
                                            np.ones((4, 4), bool))
        assert best_id == -1 and score == 0.0
