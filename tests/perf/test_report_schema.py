"""One ``to_dict()`` schema across every report type.

Each layer keeps richer books, but all of them flatten through
:func:`repro.perf.report.base_report_dict`, so downstream tooling can
read ``kind / calls / cycles / cache / shed`` off any report without
knowing which layer produced it.
"""

import pytest

from repro.addresslib import BatchCall, INTRA_GRAD
from repro.api import EnginePool, EngineService, SubmitOptions
from repro.host import BatchReport, RunReport
from repro.image import ImageFormat, noise_frame
from repro.perf import REPORT_SCHEMA_KEYS, base_report_dict

QCIF = ImageFormat("QCIF", 176, 144)


def _service_report():
    service = EngineService(pool=EnginePool.of_engines(2))
    for seed in range(4):
        service.submit(BatchCall.intra(INTRA_GRAD,
                                       noise_frame(QCIF, seed=seed)),
                       SubmitOptions(tenant="t"))
    return service.drain()


class TestBaseReportDict:
    def test_schema_keys_come_first_and_in_order(self):
        books = base_report_dict("x", calls=1, cycles=2.0)
        assert tuple(books)[:len(REPORT_SCHEMA_KEYS)] == (
            REPORT_SCHEMA_KEYS)

    def test_extras_cannot_shadow_schema_keys(self):
        # A duplicate named key dies at the call boundary; anything
        # that slips past the signature dies on the clash check.
        with pytest.raises((TypeError, ValueError)):
            base_report_dict("x", calls=1, cycles=2.0,
                             **{"calls": 3})


class TestEveryReportSpeaksTheSchema:
    def test_run_report(self):
        books = RunReport(platform="p", intra_calls=2, inter_calls=1,
                          segment_calls=0, call_seconds=0.5,
                          high_level_seconds=0.1,
                          residency_hits=3).to_dict()
        assert books["kind"] == "run"
        assert books["calls"] == 3
        assert books["cache"]["hits"] == 3
        assert all(key in books for key in REPORT_SCHEMA_KEYS)

    def test_batch_report(self):
        books = BatchReport(calls=4, waves=2, workers=2,
                            modeled_serial_seconds=1.0,
                            modeled_pipelined_seconds=0.5).to_dict()
        assert books["kind"] == "batch"
        assert books["calls"] == 4 and books["shed"] == 0
        assert books["modeled_speedup"] == pytest.approx(2.0)
        assert all(key in books for key in REPORT_SCHEMA_KEYS)

    def test_service_report_nests_the_pool_books(self):
        report = _service_report()
        books = report.to_dict()
        assert books["kind"] == "service"
        assert books["calls"] == report.completed == 4
        assert books["calls_by_tenant"] == {"t": 4}
        assert all(key in books for key in REPORT_SCHEMA_KEYS)
        pool_books = books["pool"]
        assert pool_books["kind"] == "pool"
        assert len(pool_books["workers"]) == 2
        assert all(key in pool_books for key in REPORT_SCHEMA_KEYS)

    def test_worker_reports_speak_the_schema_too(self):
        books = _service_report().to_dict()
        for worker_books in books["pool"]["workers"]:
            assert worker_books["kind"] == "pool_worker"
            assert all(key in worker_books
                       for key in REPORT_SCHEMA_KEYS)

    def test_cycles_are_consistent_with_the_pool_clock(self):
        report = _service_report()
        books = report.to_dict()
        assert books["cycles"] == pytest.approx(
            report.busy_seconds * report.clock_hz)
