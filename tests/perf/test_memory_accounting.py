"""Table 2's memory-access accounting: exact paper numbers."""

import pytest

from repro.image import CIF, QCIF
from repro.perf import (MemoryAccessRow, PAPER_TABLE2, hardware_accesses,
                        table2_rows)


class TestTable2Exact:
    def test_all_four_rows_match_the_paper(self):
        rows = table2_rows(CIF)
        assert len(rows) == len(PAPER_TABLE2)
        for row, paper in zip(rows, PAPER_TABLE2):
            label, cin, cout, sw, hw, saving = paper
            assert row.label == label
            assert row.channels_in == cin
            assert row.sw_accesses == sw, row.label
            assert row.hw_accesses == hw, row.label
            assert row.paper_saving_percent == pytest.approx(saving,
                                                             abs=0.5)

    def test_hw_constant_across_rows(self):
        """The engine touches each pixel once in, once out -- regardless
        of operation, neighbourhood or channel count."""
        rows = table2_rows(CIF)
        assert len({row.hw_accesses for row in rows}) == 1
        assert rows[0].hw_accesses == 2 * CIF.pixels

    def test_saving_grows_with_traffic(self):
        """'The benefit obtained ... increases with the amount of data
        traffic.'"""
        rows = table2_rows(CIF)
        ratios = [row.sw_accesses / row.hw_accesses for row in rows]
        assert ratios[1] == min(ratios)          # CON_0: no benefit
        assert ratios[3] == max(ratios) == 3.0   # YUV CON_8: largest

    def test_paper_mixes_saving_conventions(self):
        """Rows 1-3 use (SW-HW)/SW; row 4 prints (SW-HW)/HW = 200 %."""
        rows = table2_rows(CIF)
        assert not rows[0].paper_uses_hw_basis
        assert rows[3].paper_uses_hw_basis
        assert rows[3].saving_vs_software == pytest.approx(2 / 3, abs=0.01)
        assert rows[3].saving_vs_hardware == pytest.approx(2.0, abs=0.01)


class TestScaling:
    def test_qcif_scales_by_pixel_count(self):
        cif_rows = table2_rows(CIF)
        qcif_rows = table2_rows(QCIF)
        scale = QCIF.pixels / CIF.pixels
        for c, q in zip(cif_rows, qcif_rows):
            assert q.sw_accesses == pytest.approx(c.sw_accesses * scale,
                                                  rel=0.01)
            assert q.hw_accesses == c.hw_accesses * scale

    def test_reduce_call_hardware_accesses(self):
        assert hardware_accesses(CIF, produces_image=False) == CIF.pixels


class TestRowMath:
    def test_zero_division_guards(self):
        row = MemoryAccessRow("z", "Y", "Y", sw_accesses=0, hw_accesses=0)
        assert row.saving_vs_software == 0.0
        assert row.saving_vs_hardware == 0.0
