"""Transport books vs the shared report schema.

``CallScheduler.transport_stats()`` and the
``WorkerReport``/``PoolReport`` transport entries are the figures the
BENCH emitters and ``repro.summary`` read; this suite pins their key
sets and the ``base_report_dict`` schema contract -- including the
degenerate books nobody exercises by hand: a scheduler that never
completed a call, and one that only ever bypassed inline.
"""

import pytest

from repro.addresslib import BatchCall, INTRA_GRAD
from repro.host import CallScheduler
from repro.image import ImageFormat, noise_frame
from repro.perf import REPORT_SCHEMA_KEYS, base_report_dict
from repro.pool import EnginePool, PoolReport
from repro.pool.worker import WorkerReport

QCIF = ImageFormat("QCIF", 176, 144)

#: The counter keys ``PoolReport.transport`` aggregates; every one must
#: exist (as an int) in ``CallScheduler.transport_stats()`` or the pool
#: books silently sum zeros.
TRANSPORT_COUNTER_KEYS = (
    "round_trips", "pool_calls", "inline_calls", "bypass_calls",
    "shm_calls", "pickle_calls", "worker_cache_hits",
    "worker_cache_attaches")


def _assert_schema(payload):
    for key in REPORT_SCHEMA_KEYS:
        assert key in payload, f"missing shared schema key {key!r}"
    assert isinstance(payload["calls"], int)
    assert isinstance(payload["cycles"], float)
    assert isinstance(payload["cache"], dict)
    assert isinstance(payload["shed"], int)


class TestSchedulerTransportStats:
    def test_zero_completion_books(self):
        with CallScheduler(max_workers=2) as scheduler:
            stats = scheduler.transport_stats()
        for key in TRANSPORT_COUNTER_KEYS:
            assert stats[key] == 0
        assert stats["store"] == {}
        assert stats["transport"] == "auto"
        assert stats["bypass"] == "auto"
        assert stats["round_trip_s"] is None

    def test_bypass_only_books(self):
        calls = [BatchCall.intra(INTRA_GRAD, noise_frame(QCIF, seed=i))
                 for i in range(3)]
        with CallScheduler(max_workers=2,
                           bypass="always") as scheduler:
            scheduler.compute_batch(calls)
            stats = scheduler.transport_stats()
        assert stats["bypass_calls"] == len(calls)
        assert stats["pool_calls"] == 0
        assert stats["shm_calls"] == 0
        assert stats["pickle_calls"] == 0
        assert stats["round_trips"] == 0
        assert stats["worker_cache_hits"] == 0

    def test_counters_are_ints(self):
        with CallScheduler(max_workers=1) as scheduler:
            stats = scheduler.transport_stats()
            for key in TRANSPORT_COUNTER_KEYS:
                assert isinstance(stats[key], int), key


class TestWorkerReportBooks:
    def test_zero_completion_schema(self):
        payload = WorkerReport(worker_id=0).to_dict(clock_hz=33e6)
        _assert_schema(payload)
        assert payload["kind"] == "pool_worker"
        assert payload["calls"] == 0
        assert payload["cycles"] == 0.0
        assert payload["cache"] == {}
        assert payload["residency_hit_rate"] is None
        assert payload["transport"] == {}

    def test_transport_books_pass_through(self):
        report = WorkerReport(worker_id=1, calls_routed=4,
                              transport={"shm_calls": 4,
                                         "round_trips": 2})
        payload = report.to_dict(clock_hz=33e6)
        assert payload["transport"] == {"shm_calls": 4,
                                        "round_trips": 2}


class TestPoolReportBooks:
    def test_zero_completion_schema(self):
        payload = PoolReport(placement="affinity").to_dict()
        _assert_schema(payload)
        assert payload["kind"] == "pool"
        assert payload["calls"] == 0
        assert payload["workers"] == []
        assert payload["transport"] == {key: 0 for key in
                                        TRANSPORT_COUNTER_KEYS}

    def test_transport_sums_across_boards(self):
        report = PoolReport(placement="affinity", workers=[
            WorkerReport(worker_id=0,
                         transport={"shm_calls": 3, "round_trips": 1,
                                    "store": {"segments": 2}}),
            WorkerReport(worker_id=1,
                         transport={"shm_calls": 2, "round_trips": 1,
                                    "round_trip_s": 0.001}),
        ])
        totals = report.transport
        assert totals["shm_calls"] == 5
        assert totals["round_trips"] == 2
        # Non-counter entries (nested store stats, float round trips)
        # never leak into the summed books.
        assert set(totals) == set(TRANSPORT_COUNTER_KEYS)

    def test_live_pool_report_conforms(self):
        calls = [BatchCall.intra(INTRA_GRAD, noise_frame(QCIF, seed=i))
                 for i in range(4)]
        with EnginePool.of_engines(2) as pool:
            pool.dispatch(calls)
            report = pool.report()
        payload = report.to_dict()
        _assert_schema(payload)
        assert payload["calls"] == len(calls)
        workers = payload["workers"]
        assert len(workers) == 2
        for worker_payload in workers:
            _assert_schema(worker_payload)
            assert worker_payload["kind"] == "pool_worker"
        summed = {key: 0 for key in TRANSPORT_COUNTER_KEYS}
        for worker in report.workers:
            for key in TRANSPORT_COUNTER_KEYS:
                value = worker.transport.get(key)
                if isinstance(value, int):
                    summed[key] += value
        assert report.transport == summed


class TestSchemaContract:
    def test_scheduler_stats_cover_pool_counter_keys(self):
        with CallScheduler(max_workers=1) as scheduler:
            stats = scheduler.transport_stats()
        missing = [key for key in TRANSPORT_COUNTER_KEYS
                   if key not in stats]
        assert not missing, (
            f"PoolReport.transport sums keys transport_stats() no "
            f"longer emits: {missing}")

    def test_base_report_dict_normalises_types(self):
        payload = base_report_dict("x", calls=3, cycles=7,
                                   cache=None, transport={"a": 1})
        _assert_schema(payload)
        assert payload["cycles"] == 7.0
        assert payload["transport"] == {"a": 1}
