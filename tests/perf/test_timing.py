"""The analytic timing model, validated against the cycle-level engine.

The closed form must reproduce the simulator's cycle counts exactly for
ordinary calls (the dataflow is deterministic) and within a small drain
tolerance for special inter calls.
"""

import pytest

from repro.addresslib import INTER_ABSDIFF, INTRA_COPY, INTRA_GRAD
from repro.core import AddressEngine, inter_config, intra_config
from repro.image import CIF, ImageFormat, noise_frame
from repro.perf import EngineTimingModel

MODEL = EngineTimingModel()
ENGINE = AddressEngine()


class TestAgainstCycleModel:
    def test_intra_cycles_exact(self, fmt32, frame32):
        config = intra_config(INTRA_COPY, fmt32)
        run = ENGINE.run_call(config, frame32)
        assert MODEL.call_cycles(config) == run.cycles

    def test_intra_multi_cycle_op_still_hidden(self, fmt32, frame32):
        """Even a 3-cycle/pixel op hides behind the DMA transfers."""
        config = intra_config(INTRA_GRAD, fmt32)
        run = ENGINE.run_call(config, frame32)
        assert MODEL.call_cycles(config) == run.cycles

    def test_inter_cycles_exact(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32)
        run = ENGINE.run_call(config, frame32, frame32_b)
        assert MODEL.call_cycles(config) == run.cycles

    def test_reduce_cycles_exact(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True)
        run = ENGINE.run_call(config, frame32, frame32_b)
        assert MODEL.call_cycles(config) == pytest.approx(run.cycles,
                                                          rel=0.02)

    def test_special_inter_within_drain_tolerance(self, fmt32, frame32,
                                                  frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True,
                              requires_full_frames=True)
        run = ENGINE.run_call(config, frame32, frame32_b)
        assert MODEL.call_cycles(config) == pytest.approx(
            run.cycles, rel=0.02)

    def test_non_square_exact(self, fmt48x32):
        frame = noise_frame(fmt48x32, seed=1)
        config = intra_config(INTRA_COPY, fmt48x32)
        run = ENGINE.run_call(config, frame)
        assert MODEL.call_cycles(config) == run.cycles


class TestClosedForm:
    def test_cif_intra_payload(self):
        config = intra_config(INTRA_COPY, CIF)
        assert MODEL.input_words(config) == 202_752
        assert MODEL.readback_words(config) == 202_752
        assert MODEL.dma_jobs(config) == 19

    def test_cif_intra_board_time_near_6ms(self):
        """Two full-frame PCI passes at 264 MB/s: ~6.2 ms plus overheads."""
        config = intra_config(INTRA_COPY, CIF)
        assert MODEL.board_seconds(config) == pytest.approx(6.2e-3,
                                                            rel=0.05)

    def test_inter_costs_about_half_more(self):
        intra = intra_config(INTRA_COPY, CIF)
        inter = inter_config(INTER_ABSDIFF, CIF)
        ratio = MODEL.call_cycles(inter) / MODEL.call_cycles(intra)
        assert ratio == pytest.approx(1.5, abs=0.05)

    def test_special_fraction_is_an_eighth(self):
        """Section 4.1: the unhidden tail of a special inter op is 12.5 %
        of the input transfer time."""
        config = inter_config(INTER_ABSDIFF, CIF, reduce_to_scalar=True,
                              requires_full_frames=True)
        assert MODEL.non_pci_fraction(config) == pytest.approx(0.125,
                                                               abs=0.01)

    def test_ordinary_calls_have_no_unhidden_tail(self):
        assert MODEL.unhidden_processing_cycles(
            intra_config(INTRA_COPY, CIF)) == 0
        assert MODEL.unhidden_processing_cycles(
            inter_config(INTER_ABSDIFF, CIF)) == 0

    def test_zbt_bank_bandwidth_matches_paper(self):
        assert MODEL.zbt_bank_bytes_per_second() == 264_000_000

    def test_host_overhead_scales_with_interrupts(self):
        small = MODEL.host_overhead_seconds_raw(strips=2, images_in=1)
        large = MODEL.host_overhead_seconds_raw(strips=18, images_in=2)
        assert large > small
        expected = (MODEL.host_call_overhead_s
                    + 38 * MODEL.host_interrupt_service_s)
        assert large == pytest.approx(expected)

    def test_raw_and_config_paths_agree(self):
        config = inter_config(INTER_ABSDIFF, CIF)
        assert MODEL.call_cycles(config) == MODEL.call_cycles_raw(
            CIF.pixels, CIF.strips, 2, True)
        assert MODEL.call_seconds(config) == pytest.approx(
            MODEL.call_seconds_raw(CIF.pixels, CIF.strips, 2, True))


class TestResidentInputs:
    """Call chaining: the closed form vs the simulator with preloaded
    banks."""

    def test_one_resident_inter_input(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True)
        run = ENGINE.run_call(config, frame32, frame32_b,
                              resident=[True, False])
        model = MODEL.call_cycles_raw(fmt32.pixels, fmt32.strips, 2,
                                      False, resident_images=1)
        assert model == pytest.approx(run.cycles, rel=0.03)

    def test_all_resident_intra(self, fmt32, frame32):
        """No input phase: the readback stretches to three cycles per
        pixel (bank-B contention), which the model prices as one extra
        unhidden cycle per pixel."""
        config = intra_config(INTRA_COPY, fmt32)
        run = ENGINE.run_call(config, frame32, resident=[True])
        model = MODEL.call_cycles_raw(fmt32.pixels, fmt32.strips, 1,
                                      True, resident_images=1)
        assert model == pytest.approx(run.cycles, rel=0.02)
        # And the result is still bit-exact.
        assert run.frame.equals(
            AddressEngine.run_functional(config, frame32))

    def test_resident_cheaper_than_shipped(self, fmt32, frame32):
        config = intra_config(INTRA_COPY, fmt32)
        shipped = ENGINE.run_call(config, frame32)
        resident = ENGINE.run_call(config, frame32, resident=[True])
        assert resident.cycles < shipped.cycles
        assert resident.pci.words_to_board == 0

    def test_resident_count_validation(self):
        with pytest.raises(ValueError):
            MODEL.input_words_raw(100, 1, resident_images=2)


class TestStripPipelineOverlap:
    """The block_A/block_B double-buffer model (section 4.1)."""

    GEOMETRIES = [
        (176, 144), (352, 288), (24, 48), (20, 33), (4, 8), (24, 16),
    ]

    @pytest.mark.parametrize("width,height", GEOMETRIES)
    @pytest.mark.parametrize("images_in,produces_image",
                             [(1, True), (2, True), (2, False)])
    def test_overlapped_never_exceeds_serial(self, width, height,
                                             images_in, produces_image):
        fmt = ImageFormat(f"P{width}x{height}", width, height)
        serial = MODEL.serial_call_cycles_raw(
            fmt.pixels, fmt.strips, images_in, produces_image)
        overlapped = MODEL.overlapped_call_cycles_raw(
            fmt.pixels, fmt.strips, images_in, produces_image)
        assert overlapped <= serial + 1e-9
        assert overlapped > 0

    @pytest.mark.parametrize("width,height", GEOMETRIES)
    def test_efficiency_in_unit_interval(self, width, height):
        fmt = ImageFormat(f"P{width}x{height}", width, height)
        efficiency = MODEL.overlap_efficiency_raw(
            fmt.pixels, fmt.strips, 1, True)
        assert 0.0 <= efficiency < 1.0

    def test_full_frame_ops_get_no_overlap_credit(self):
        fmt = ImageFormat("P24x48", 24, 48)
        serial = MODEL.serial_call_cycles_raw(
            fmt.pixels, fmt.strips, 2, True, requires_full_frames=True)
        overlapped = MODEL.overlapped_call_cycles_raw(
            fmt.pixels, fmt.strips, 2, True, requires_full_frames=True)
        assert overlapped == float(serial)
        assert MODEL.overlap_efficiency_raw(
            fmt.pixels, fmt.strips, 2, True,
            requires_full_frames=True) == 0.0

    def test_more_strips_hide_more_transfer(self):
        # Same pixel count split into more strips overlaps better: the
        # first-strip fill and last-strip drain shrink.
        tall = ImageFormat("P16x96", 16, 96)     # 6 strips
        short = ImageFormat("P48x32", 48, 32)    # 2 strips, same pixels
        assert tall.pixels == short.pixels
        eff_tall = MODEL.overlap_efficiency_raw(
            tall.pixels, tall.strips, 1, True)
        eff_short = MODEL.overlap_efficiency_raw(
            short.pixels, short.strips, 1, True)
        assert eff_tall > eff_short

    def test_phases_sum_to_serial(self):
        fmt = ImageFormat("P24x48", 24, 48)
        transfer = MODEL.transfer_cycles_raw(fmt.pixels, fmt.strips, 1)
        compute = MODEL.compute_cycles_raw(fmt.pixels)
        readback = MODEL.readback_cycles_raw(fmt.pixels, True)
        assert (transfer + compute + readback
                == MODEL.serial_call_cycles_raw(fmt.pixels, fmt.strips,
                                                1, True))

    def test_seconds_variants_include_host_overhead(self):
        fmt = ImageFormat("P24x48", 24, 48)
        serial_s = MODEL.serial_call_seconds_raw(
            fmt.pixels, fmt.strips, 1, True)
        overlapped_s = MODEL.overlapped_call_seconds_raw(
            fmt.pixels, fmt.strips, 1, True)
        host = MODEL.host_overhead_seconds_raw(fmt.strips, 1)
        assert serial_s > host
        assert overlapped_s > host
        assert overlapped_s <= serial_s
