"""Host CPU cost models."""

import pytest

from repro.addresslib import InstructionCost, OpProfile
from repro.perf import (CpuModel, DEFAULT_CPI, PENTIUM_4_3000,
                        PENTIUM_M_1600)


def profile_of(cost, units=1):
    profile = OpProfile()
    profile.add_cost(cost, units)
    return profile


class TestCpuModel:
    def test_cycles_weight_by_class(self):
        cpu = CpuModel("t", 1e9, cpi={"addr": 1, "load": 2, "store": 2,
                                      "alu": 1, "mul": 4, "branch": 3})
        profile = profile_of(InstructionCost(addr=10, mul=5, branch=2))
        assert cpu.cycles(profile) == 10 * 1 + 5 * 4 + 2 * 3

    def test_seconds_divides_by_clock(self):
        cpu = CpuModel("t", 2e9, cpi=dict(DEFAULT_CPI))
        profile = profile_of(InstructionCost(alu=2e9 / DEFAULT_CPI["alu"]))
        assert cpu.seconds(profile) == pytest.approx(1.0)

    def test_missing_class_rejected(self):
        with pytest.raises(ValueError):
            CpuModel("bad", 1e9, cpi={"addr": 1})

    def test_flat_instruction_helper(self):
        cpu = CpuModel("t", 1e9, cpi=dict(DEFAULT_CPI))
        assert cpu.seconds_for_instructions(1e9, mean_cpi=2.0) == \
            pytest.approx(2.0)


class TestPaperHosts:
    def test_clocks(self):
        assert PENTIUM_M_1600.clock_hz == 1.6e9
        assert PENTIUM_4_3000.clock_hz == 3.0e9

    def test_same_profile_scales_by_clock(self):
        """With identical CPI tables the P4 runs the same profile faster
        by exactly the clock ratio (used by the Table 3 dual pricing)."""
        profile = profile_of(InstructionCost(addr=100, load=50, alu=80))
        ratio = (PENTIUM_M_1600.seconds(profile)
                 / PENTIUM_4_3000.seconds(profile))
        assert ratio == pytest.approx(3.0 / 1.6)

    def test_loads_cost_more_than_alu(self):
        """The calibration reflects memory-bound scalar code."""
        assert DEFAULT_CPI["load"] > DEFAULT_CPI["alu"]
        assert DEFAULT_CPI["mul"] > DEFAULT_CPI["alu"]
