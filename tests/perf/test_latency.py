"""Percentile bookkeeping used by the service layer's latency books."""

import pytest

from repro.perf import LatencyTracker, percentile


class TestPercentile:
    def test_interpolates_between_closest_ranks(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0) == 10.0
        assert percentile(samples, 100) == 40.0
        assert percentile(samples, 50) == pytest.approx(25.0)

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile(
            [1.0, 2.0, 3.0], 50) == 2.0

    def test_single_sample_is_every_percentile(self):
        assert percentile([7.0], 1) == percentile([7.0], 99) == 7.0

    def test_empty_and_out_of_range_raise(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyTracker:
    def test_books_accumulate(self):
        tracker = LatencyTracker()
        for value in (0.010, 0.020, 0.030):
            tracker.record(value)
        assert tracker.count == 3
        assert tracker.total_seconds == pytest.approx(0.060)
        assert tracker.mean == pytest.approx(0.020)
        assert tracker.max == pytest.approx(0.030)
        assert tracker.p50 == pytest.approx(0.020)

    def test_p95_sits_in_the_tail(self):
        tracker = LatencyTracker()
        for value in range(1, 101):
            tracker.record(float(value))
        assert tracker.p50 == pytest.approx(50.5)
        assert tracker.p95 == pytest.approx(95.05)
        assert tracker.p50 < tracker.p95 <= tracker.max

    def test_empty_tracker_percentiles_are_undefined(self):
        # A percentile of zero samples is undefined -- None, never a
        # fake 0.0 that would read as an impossibly fast service.
        tracker = LatencyTracker()
        assert tracker.count == 0
        assert tracker.mean == 0.0
        assert tracker.p50 is None and tracker.p95 is None
        assert tracker.quantile(99.0) is None
