"""Cycle-exactness of the batched fast-path stepper.

The fast path (src/repro/core/fastpath.py) must be *indistinguishable*
from the per-cycle reference loop: same completion cycle, same PLC
stats, same per-bank ZBT access counts, same interrupts, same data.
This harness drives randomized configurations (geometry, operation,
reduce/special flags, residency) through both steppers and compares
every observable, plus targeted tests for the out-of-regime fallbacks
and the enriched deadlock diagnostics.
"""

import random

import pytest

from repro.analysis import EngineParams, predict_fast_path
from repro.core import (AddressEngine, EngineDeadlock, inter_config,
                        intra_config)
from repro.addresslib import INTER_OPS, INTRA_OPS
from repro.image import ImageFormat, noise_frame

FAST = AddressEngine(fast_path=True)
SLOW = AddressEngine(fast_path=False)

#: Randomized shards x cases per shard: >= 200 total property cases.
SHARDS = 8
CASES_PER_SHARD = 26

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)


def _snapshot(run):
    """Every cycle-level observable of one engine run."""
    stats = run.plc_stats
    snap = {
        "cycles": run.cycles,
        "completion_cycle": run.completion_cycle,
        "input_complete_cycle": run.input_complete_cycle,
        "plc": (stats.cycles, stats.active_cycles,
                stats.issued_pixel_cycles, stats.retired_pixel_cycles,
                stats.stall_iim_wait, stats.stall_oim_full,
                stats.stall_op_busy, stats.stall_disabled,
                stats.loads, stats.shifts),
        "zbt_banks": [(bank.reads, bank.writes) for bank in run.zbt.stats],
        "zbt": (run.zbt.word_accesses, run.zbt.access_cycles,
                run.zbt.pixel_ops),
        "pci": (run.pci.busy_cycles, run.pci.stall_cycles,
                run.pci.overhead_cycles, run.pci.idle_cycles,
                run.pci.words_to_board, run.pci.words_to_host),
        "interrupts": [(irq.cycle, irq.name)
                       for irq in run.pci.interrupts],
        "input_txus": [(txu.pixels_moved, txu.stall_no_strip,
                        txu.stall_iim_full, txu.stall_bank_busy)
                       for txu in run.input_txus],
        "oim_peak": run.oim_peak_pixels,
        "matrix": (run.matrix_loads, run.matrix_shifts,
                   run.matrix_pixels_fetched),
        "scalar": run.scalar,
    }
    if run.output_txu is not None:
        out = run.output_txu
        snap["output_txu"] = (out.pixels_written, out.words_written,
                              tuple(out.bank_words), out.stall_oim_empty,
                              out.stall_bank_busy)
    return snap


def _assert_equivalent(config, frames, resident=None):
    slow = SLOW.run_call(config, *frames, resident=resident)
    fast = FAST.run_call(config, *frames, resident=resident)
    assert not slow.fast_path_used
    slow_snap, fast_snap = _snapshot(slow), _snapshot(fast)
    for key in slow_snap:
        assert slow_snap[key] == fast_snap[key], (
            f"{key} diverged for {config.op.name} on {config.fmt.name}: "
            f"per-cycle {slow_snap[key]} vs fast {fast_snap[key]}")
    if slow.frame is not None:
        assert slow.frame.equals(fast.frame)
    # The static analyzer's prediction must match the dispatch decision
    # the engine actually took (they share fast_path_blockers; this
    # holds the contract over the whole corpus).
    prediction = predict_fast_path(config, EngineParams.from_engine(FAST))
    assert prediction.eligible == fast.fast_path_used, (
        f"analyzer predicted eligible={prediction.eligible} "
        f"(reasons={prediction.reasons}) but the engine used "
        f"fast_path={fast.fast_path_used} for {config.op.name} on "
        f"{config.fmt.name}")
    return fast


def _random_case(rng):
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        config = intra_config(rng.choice(_INTRA), fmt)
        frames = [frame_a]
        resident = [rng.random() < 0.2]
    else:
        reduce_to_scalar = rng.random() < 0.3
        requires_full_frames = fmt.strips >= 2 and rng.random() < 0.3
        config = inter_config(rng.choice(_INTER), fmt,
                              reduce_to_scalar=reduce_to_scalar,
                              requires_full_frames=requires_full_frames)
        frames = [frame_a, noise_frame(fmt, seed=rng.randrange(10_000))]
        resident = [rng.random() < 0.2, rng.random() < 0.2]
    if not any(resident):
        resident = None
    return config, frames, resident


class TestFastPathEquivalence:
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_randomized_equivalence(self, shard):
        rng = random.Random(0xFA57 + shard)
        for _ in range(CASES_PER_SHARD):
            config, frames, resident = _random_case(rng)
            _assert_equivalent(config, frames, resident=resident)

    def test_fast_path_engages_on_standard_calls(self):
        fmt = ImageFormat("P24x48", 24, 48)
        frame = noise_frame(fmt, seed=7)
        run = FAST.run_call(intra_config(INTRA_OPS["intra_sobel_x"], fmt),
                            frame)
        assert run.fast_path_used


class TestFastPathFallbacks:
    def test_long_latency_op_falls_back_and_matches(self):
        # Stage-3 latency above two cycles: outside the batched FLOW
        # signatures, so the engine must use the per-cycle loop -- and
        # still produce the identical run.
        fmt = ImageFormat("P20x48", 20, 48)
        frame = noise_frame(fmt, seed=11)
        op = INTRA_OPS["intra_grad"]
        assert op.engine_cycles > 2
        run = _assert_equivalent(intra_config(op, fmt), [frame])
        assert not run.fast_path_used

    def test_single_strip_frame_falls_back_and_matches(self):
        fmt = ImageFormat("P24x16", 24, 16)
        assert fmt.strips < 2
        frame = noise_frame(fmt, seed=13)
        run = _assert_equivalent(
            intra_config(INTRA_OPS["intra_sobel_y"], fmt), [frame])
        assert not run.fast_path_used

    def test_explicit_override_forces_per_cycle(self):
        fmt = ImageFormat("P24x48", 24, 48)
        frame = noise_frame(fmt, seed=17)
        run = FAST.run_call(intra_config(INTRA_OPS["intra_copy"], fmt),
                            frame, fast_path=False)
        assert not run.fast_path_used


class TestDeadlockDiagnostics:
    @pytest.mark.parametrize("engine", [FAST, SLOW],
                             ids=["fast", "per-cycle"])
    def test_deadlock_message_reports_component_progress(self, engine):
        fmt = ImageFormat("P24x48", 24, 48)
        frame = noise_frame(fmt, seed=19)
        config = intra_config(INTRA_OPS["intra_sobel_x"], fmt)
        with pytest.raises(EngineDeadlock) as excinfo:
            engine.run_call(config, frame, max_cycles=500)
        message = str(excinfo.value)
        assert "500 cycles" in message
        assert "strip=" in message
        assert "lines_moved=" in message
        assert "retired=" in message
        assert "dma words" in message
        assert "readback=" in message
