"""Figure-level behavioural invariants (F1-F6 in DESIGN.md).

The paper's figures are architecture diagrams; the behaviours they
depict are checked here against the cycle-level model:

* Figure 1 -- the three pixel-addressing scan patterns;
* Figure 2 -- the component wiring (covered implicitly by every run);
* Figure 3 -- the ZBT distribution: strip double buffering, Res switch;
* Figure 4 -- the one-cycle worst-case perpendicular neighbourhood;
* Figure 5 -- PLC structure (arbiter/FSMs/startpipeline, in test_plc);
* Figure 6 -- the four-stage Process Unit (golden tests + here).
"""

import pytest

from repro.addresslib import (COLUMN_9, CON_8, INTER_ABSDIFF, INTRA_COPY,
                              fir_op, luma_delta_criterion,
                              SegmentProcessor)
from repro.core import (AddressEngine, RESULT_BANKS, inter_config,
                        intra_config)
from repro.image import ImageFormat, blob_frame, noise_frame

ENGINE = AddressEngine()


class TestFigure1ScanPatterns:
    def test_inter_processes_both_frames_in_lockstep(self, fmt32,
                                                     frame32, frame32_b):
        result = ENGINE.run_call(inter_config(INTER_ABSDIFF, fmt32),
                                 frame32, frame32_b)
        moved = [txu.pixels_moved for txu in result.input_txus]
        assert moved == [fmt32.pixels, fmt32.pixels]

    def test_intra_raster_scan_order(self, fmt32, frame32):
        """Stage 1 visits pixels in raster order: LOADs exactly at row
        starts prove the scan shape."""
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        assert result.matrix_loads == fmt32.height

    def test_segment_expansion_is_geodesic(self, fmt32):
        frame = blob_frame(fmt32, [(16, 16)], radius=8)
        result = SegmentProcessor().expand(frame, [(16, 16)],
                                           luma_delta_criterion(8))
        depths = [int(result.distance[y, x]) for x, y in result.order]
        assert depths == sorted(depths)


class TestFigure3MemoryDistribution:
    def test_strip_double_buffering_overlaps(self, fmt48x32):
        """Strips land in alternating blocks while processing runs: by
        the time the input completes, most pixel-cycles have retired."""
        frame = noise_frame(fmt48x32, seed=61)
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt48x32), frame)
        # The whole call is about input-transfer + readback, with no
        # processing epoch appended: cycles ~ 4 * pixels + overheads.
        payload = 4 * fmt48x32.pixels
        assert result.cycles < payload * 1.2

    def test_result_bank_switch_happens_exactly_once(self, fmt32, frame32):
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        txu = result.output_txu
        assert txu.switched
        # Both result banks carry words: some written pre-switch (bank A)
        # and the rest post-switch (bank B).
        assert txu.bank_words[0] > 0
        assert txu.bank_words[1] > 0
        assert sum(txu.bank_words) == 2 * fmt32.pixels

    def test_readback_starts_only_when_input_complete(self, fmt32,
                                                      frame32):
        """'Res_block_A can be transferred when the PCI bus is free, i.e.
        when the input image is completely stored in the ZBT.'"""
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        start = next(i.cycle for i in result.pci.interrupts
                     if i.name == "readback_start")
        assert start >= result.input_complete_cycle


class TestFigure4WorstCaseNeighbourhood:
    def test_perpendicular_column_costs_one_fetch_per_pixel(self, fmt32):
        """The 9-line column perpendicular to the scan still fetches in
        one stage-2 cycle: pixel-cycle count equals pixel count with no
        extra fetch serialisation."""
        op = fir_op("col9", COLUMN_9, [1] * 9, shift=3)
        frame = noise_frame(fmt32, seed=62)
        result = ENGINE.run_call(intra_config(op, fmt32), frame)
        stats = result.plc_stats
        assert stats.loads + stats.shifts == fmt32.pixels
        # Each fetch (LOAD or SHIFT) is one stage-2 instruction: the
        # active cycles stay close to what a 3x3 call needs.
        small = ENGINE.run_call(
            intra_config(fir_op("box3f", CON_8, [1] * 9, shift=3), fmt32),
            frame)
        assert result.cycles == small.cycles

    def test_column9_fetches_nine_fresh_per_step(self, fmt32):
        """Perpendicular to the scan nothing is reusable: the matrix
        refetches all nine pixels every step (the case that motivates
        the IIM's parallel line stores)."""
        op = fir_op("col9b", COLUMN_9, [1] * 9, shift=3)
        frame = noise_frame(fmt32, seed=63)
        result = ENGINE.run_call(intra_config(op, fmt32), frame)
        assert result.matrix_pixels_fetched == 9 * fmt32.pixels


class TestFigure6ProcessUnitStages:
    def test_pipeline_depth_visible_in_latency(self, fmt16, frame16):
        """First result appears a few cycles after the first fetchable
        pixel -- the four-stage latency, not a per-pixel serial cost."""
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt16), frame16)
        stats = result.plc_stats
        assert stats.retired_pixel_cycles == fmt16.pixels
        assert stats.issued_pixel_cycles == fmt16.pixels

    def test_zbt_word_accesses_decompose(self, fmt32, frame32):
        """Input words (DMA writes + TxU reads) and output words (TxU
        writes + readback reads) account for every ZBT port operation."""
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        pixels = fmt32.pixels
        expected = (2 * pixels      # DMA writes both words of each pixel
                    + 2 * pixels    # input TxU reads both words
                    + 2 * pixels    # output TxU writes both result words
                    + 2 * pixels)   # readback DMA reads them back
        assert result.zbt.word_accesses == expected
