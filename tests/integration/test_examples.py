"""The shipped examples must stay runnable (smoke level).

Each example's ``main`` runs in-process with its output captured; the
mosaicing example writes into a temp directory.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, argv=None, cwd=None, monkeypatch=None):
    if monkeypatch is not None:
        if argv is not None:
            monkeypatch.setattr(sys, "argv", [name] + list(argv))
        if cwd is not None:
            monkeypatch.chdir(cwd)
    return runpy.run_path(str(EXAMPLES / name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "software backend" in out
        assert "identical images" in out

    def test_surveillance(self, capsys):
        run_example("surveillance.py")
        out = capsys.readouterr().out
        assert "surveillance detections" in out
        assert "monotone rightward" in out

    def test_mosaicing(self, capsys, tmp_path, monkeypatch):
        run_example("mosaicing.py", argv=["6"], cwd=tmp_path,
                    monkeypatch=monkeypatch)
        out = capsys.readouterr().out
        assert "mosaic coverage" in out
        assert (tmp_path / "mosaic.pgm").exists()
        from repro.image import read_pgm
        mosaic = read_pgm(tmp_path / "mosaic.pgm")
        assert mosaic.shape == (360, 480)

    def test_coprocessor_tour(self, capsys):
        run_example("coprocessor_tour.py")
        out = capsys.readouterr().out
        assert "call overview" in out
        assert "Device utilization summary" in out
        assert "102.208MHz" in out

    def test_adaptive_pipeline(self, capsys):
        run_example("adaptive_pipeline.py")
        out = capsys.readouterr().out
        assert "hardware segment extraction" in out
        assert "fits comfortably" in out
