"""End-to-end flows: applications running unchanged on either backend."""

import numpy as np
import pytest

from repro.addresslib import AddressLib, INTRA_GRAD, INTRA_MORPH_GRAD
from repro.gme import (GlobalMotionEstimator, GmeApplication, SINGAPORE,
                       SyntheticSequence)
from repro.host import (AddressEngineDriver, EngineBackend,
                        engine_platform, software_platform)
from repro.image import ImageFormat, noise_frame
from repro.segmentation import RegionGrowSegmenter


class TestBackendEquivalence:
    """The deployment claim: swap the backend, keep the algorithm."""

    def test_gme_pair_identical_across_backends(self):
        fmt = ImageFormat("E64", 64, 64)
        seq = SyntheticSequence(SINGAPORE, frames_override=2)
        ref, cur = seq.frame(0), seq.frame(1)

        results = []
        for lib in (AddressLib(), AddressLib(EngineBackend())):
            estimator = GlobalMotionEstimator(lib)
            est = estimator.estimate_pair(estimator.build_pyramid(ref),
                                          estimator.build_pyramid(cur))
            results.append(est)
        sw, hw = results
        assert sw.model == hw.model
        assert sw.final_sad == hw.final_sad
        assert sw.iterations == hw.iterations

    def test_segmentation_identical_across_backends(self):
        fmt = ImageFormat("E48", 48, 48)
        from repro.image import blob_frame
        frame = blob_frame(fmt, [(24, 24)], radius=10)
        sw = RegionGrowSegmenter(AddressLib()).segment_frame(frame)
        hw = RegionGrowSegmenter(
            AddressLib(EngineBackend())).segment_frame(frame)
        assert np.array_equal(sw.labels, hw.labels)

    def test_filter_chain_identical_with_cycle_simulation(self, fmt32,
                                                          frame32):
        """A two-op chain through the full cycle-level simulator matches
        pure software exactly."""
        sw = AddressLib()
        hw = AddressLib(EngineBackend(AddressEngineDriver(simulate=True)))
        sw_out = sw.intra(INTRA_MORPH_GRAD, sw.intra(INTRA_GRAD, frame32))
        hw_out = hw.intra(INTRA_MORPH_GRAD, hw.intra(INTRA_GRAD, frame32))
        assert sw_out.equals(hw_out)


class TestPlatformComparison:
    def test_same_call_counts_on_both_platforms(self):
        seq = SyntheticSequence(SINGAPORE, frames_override=4)
        reports = []
        for runtime in (software_platform(), engine_platform()):
            app = GmeApplication(runtime)
            result = app.run_sequence(
                SyntheticSequence(SINGAPORE, frames_override=4))
            reports.append(result)
        sw, hw = reports
        assert sw.intra_calls == hw.intra_calls
        assert sw.inter_calls == hw.inter_calls

    def test_mosaic_quality_preserved_on_engine(self):
        runtime = engine_platform()
        app = GmeApplication(runtime, build_mosaic=True,
                             mosaic_shape=(320, 400))
        result = app.run_sequence(
            SyntheticSequence(SINGAPORE, frames_override=4))
        assert result.mean_translation_error < 0.25
        assert result.mosaic.coverage > 0.5
