"""The one-shot summary CLI."""

from repro import summary


class TestSummaryCli:
    def test_full_summary_runs(self, capsys):
        summary.main(["--table3-scale", "0.012"])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "exact" in out and "DIFFERS" not in out
        assert "average speedup" in out
        assert "12.5%" in out

    def test_skip_table3(self, capsys):
        summary.main(["--skip-table3"])
        out = capsys.readouterr().out
        assert "Table 3" not in out
        assert "Section 1 / 4.1 claims" in out
