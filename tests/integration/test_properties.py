"""Property-based checks of the system's core invariants.

Hypothesis drives randomised frames, operations and geometries through
the heaviest contracts of the reproduction:

* the cycle-level engine always matches the vector executor bit-exactly;
* the closed-form timing always matches the simulator for ordinary calls;
* segment expansion is criterion-sound and geodesic;
* the v2 hardware unit always equals the software scheme;
* the counted executor's access totals follow the analytic law.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addresslib import (AddressLib, CON_4, COUNTED_EXECUTOR_KINDS,
                              CountedExecutor, INTER_OPS, INTRA_OPS,
                              SoftwareCostModel, counted_executor,
                              luma_delta_criterion)
from repro.core import (AddressEngine, SegmentCallConfig, SegmentUnit,
                        inter_config, intra_config)
from repro.image import ImageFormat, PlanarFrame420, noise_frame
from repro.perf import EngineTimingModel

ENGINE = AddressEngine()
TIMING = EngineTimingModel()

# Small frame geometries: width >= 4, height >= 4, heights crossing the
# 16-line strip boundary occasionally.
geometries = st.tuples(st.integers(4, 24), st.sampled_from([4, 8, 16, 24]))

# Geometries with at least two strips: the regime the paper's formats
# (9 and 18 strips) live in, where Res_block_A prefills during the input
# phase and the closed-form timing is exact.
multistrip_geometries = st.tuples(st.integers(4, 24),
                                  st.sampled_from([32, 48]))
intra_ops = st.sampled_from(sorted(INTRA_OPS.values(),
                                   key=lambda op: op.name))
inter_ops = st.sampled_from(sorted(INTER_OPS.values(),
                                   key=lambda op: op.name))
seeds = st.integers(0, 10_000)


def fmt_of(geometry):
    width, height = geometry
    return ImageFormat(f"P{width}x{height}", width, height)


class TestEngineGoldenProperty:
    @given(geometry=geometries, op=intra_ops, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_intra_always_matches_vector_executor(self, geometry, op,
                                                  seed):
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        config = intra_config(op, fmt)
        run = ENGINE.run_call(config, frame)
        assert run.frame.equals(AddressEngine.run_functional(config,
                                                             frame))

    @given(geometry=geometries, op=inter_ops, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_inter_always_matches_vector_executor(self, geometry, op,
                                                  seed):
        fmt = fmt_of(geometry)
        a = noise_frame(fmt, seed=seed)
        b = noise_frame(fmt, seed=seed + 1)
        config = inter_config(op, fmt)
        run = ENGINE.run_call(config, a, b)
        assert run.frame.equals(AddressEngine.run_functional(config, a, b))

    @given(geometry=multistrip_geometries,
           op=intra_ops.filter(lambda op: op.engine_cycles <= 2),
           seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_timing_model_exact_in_v1_regime(self, geometry, op, seed):
        """The closed form is exact in the regime the paper evaluates:
        frames of two or more strips (QCIF has 9, CIF 18) and stage-3
        latencies of at most two cycles, where the strip double
        buffering hides all processing."""
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        config = intra_config(op, fmt)
        run = ENGINE.run_call(config, frame)
        assert TIMING.call_cycles(config) == run.cycles

    def test_single_strip_frames_exceed_the_closed_form(self):
        """Outside that regime the simulator reveals a real effect the
        closed form ignores: on a single-strip frame nothing prefills
        Res_block_A during the input phase, so the whole readback drains
        bank B while the output TxU still writes it -- port contention
        stretches the call by up to ~35 % (worse for slow ops, whose
        production further gates the readback).  The paper's formats
        never hit this."""
        from repro.addresslib import INTRA_BOX3, INTRA_MEDIAN3
        fmt = ImageFormat("SLOW24", 24, 16)
        frame = noise_frame(fmt, seed=3)
        for op in (INTRA_BOX3, INTRA_MEDIAN3):
            config = intra_config(op, fmt)
            run = ENGINE.run_call(config, frame)
            model = TIMING.call_cycles(config)
            assert model < run.cycles <= int(1.35 * model), op.name

    @given(geometry=geometries, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_pixel_ops_always_two_per_pixel(self, geometry, seed):
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        from repro.addresslib import INTRA_HOMOGENEITY
        run = ENGINE.run_call(intra_config(INTRA_HOMOGENEITY, fmt), frame)
        assert run.zbt_pixel_ops == 2 * fmt.pixels


class TestSegmentProperties:
    @given(geometry=geometries, seed=seeds,
           delta=st.integers(0, 64),
           seed_pos=st.tuples(st.integers(0, 3), st.integers(0, 3)))
    @settings(max_examples=25, deadline=None)
    def test_expansion_is_criterion_sound(self, geometry, seed, delta,
                                          seed_pos):
        """Every non-seed labelled pixel joined through a neighbour whose
        luma difference satisfied the criterion: therefore each labelled
        pixel has a labelled 4-neighbour within delta (its parent)."""
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        sx = min(seed_pos[0], fmt.width - 1)
        sy = min(seed_pos[1], fmt.height - 1)
        lib = AddressLib()
        result = lib.segment(frame, [(sx, sy)],
                             luma_delta_criterion(delta))
        labels = result.labels
        luma = frame.y.astype(int)
        for y in range(fmt.height):
            for x in range(fmt.width):
                if labels[y, x] < 0 or (x, y) == (sx, sy):
                    continue
                has_parent = False
                for dx, dy in ((0, -1), (-1, 0), (1, 0), (0, 1)):
                    nx, ny = x + dx, y + dy
                    if not fmt.contains(nx, ny):
                        continue
                    if labels[ny, nx] >= 0 and \
                            abs(luma[ny, nx] - luma[y, x]) <= delta:
                        has_parent = True
                        break
                assert has_parent, (x, y)

    @given(geometry=geometries, seed=seeds, delta=st.integers(0, 255))
    @settings(max_examples=20, deadline=None)
    def test_v2_unit_always_matches_software(self, geometry, seed, delta):
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        seeds_list = [(fmt.width // 2, fmt.height // 2), (0, 0)]
        from repro.addresslib import SegmentProcessor
        software = SegmentProcessor(CON_4).expand(
            frame, seeds_list, luma_delta_criterion(delta))
        run = SegmentUnit().run_call(
            SegmentCallConfig(fmt, luma_delta=delta), frame, seeds_list)
        assert np.array_equal(run.labels, software.labels)
        assert np.array_equal(run.distance, software.distance)

    @given(geometry=geometries, seed=seeds, delta=st.integers(0, 40))
    @settings(max_examples=15, deadline=None)
    def test_distances_are_geodesic(self, geometry, seed, delta):
        """Distance decreases by exactly one towards some labelled
        neighbour -- the BFS/geodesic property."""
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        lib = AddressLib()
        result = lib.segment(frame, [(0, 0)], luma_delta_criterion(delta))
        distance = result.distance
        for y in range(fmt.height):
            for x in range(fmt.width):
                if distance[y, x] <= 0:
                    continue
                closer = [
                    distance[y + dy, x + dx]
                    for dx, dy in ((0, -1), (-1, 0), (1, 0), (0, 1))
                    if fmt.contains(x + dx, y + dy)
                ]
                assert distance[y, x] - 1 in closer


class TestAccessCountLaw:
    @given(geometry=geometries, seed=seeds,
           kind=st.sampled_from(COUNTED_EXECUTOR_KINDS))
    @settings(max_examples=10, deadline=None)
    def test_counted_con8_follows_4n_plus_fill(self, geometry, seed, kind):
        fmt = fmt_of(geometry)
        frame = noise_frame(fmt, seed=seed)
        from repro.addresslib import INTRA_HOMOGENEITY
        src = PlanarFrame420.from_frame(frame)
        dst = PlanarFrame420(fmt, src.counter)
        counted_executor(kind).intra(INTRA_HOMOGENEITY, src, dst)
        assert src.counter.total == 4 * fmt.pixels + 6

    @given(geometry=geometries)
    @settings(max_examples=10, deadline=None)
    def test_analytic_model_scales_linearly(self, geometry):
        fmt = fmt_of(geometry)
        model = SoftwareCostModel()
        from repro.addresslib import INTRA_HOMOGENEITY
        accesses = model.intra_accesses(INTRA_HOMOGENEITY, fmt)
        assert accesses == 4 * fmt.pixels
