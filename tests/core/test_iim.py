"""The IIM: line-store FIFOs, handshakes, one-cycle neighbourhood reads."""

import pytest

from repro.core import (IIM_LINES, IIM_LINES_PER_IMAGE_INTER,
                        InputIntermediateMemory, LineStoreFifo)


def fill_line(fifo, width, base=0):
    for x in range(width):
        fifo.push_pixel(base + x, base + x + 1000)


class TestLineStoreFifo:
    def test_line_becomes_resident_when_complete(self):
        fifo = LineStoreFifo(capacity_lines=4, width=3)
        fifo.push_pixel(1, 2)
        assert fifo.resident_lines == []
        fifo.push_pixel(3, 4)
        fifo.push_pixel(5, 6)
        assert fifo.resident_lines == [0]
        assert fifo.read_pixel(0, 0) == (1, 2)
        assert fifo.read_pixel(2, 0) == (5, 6)

    def test_lines_fill_in_frame_order(self):
        fifo = LineStoreFifo(4, 2)
        fill_line(fifo, 2)
        assert fifo.next_line_to_fill == 1
        fill_line(fifo, 2, base=10)
        assert fifo.resident_lines == [0, 1]

    def test_full_and_empty_signals(self):
        fifo = LineStoreFifo(2, 2)
        assert fifo.empty and not fifo.full
        fill_line(fifo, 2)
        fill_line(fifo, 2)
        assert fifo.full and not fifo.empty
        assert not fifo.can_accept_pixel()

    def test_overflow_raises(self):
        fifo = LineStoreFifo(1, 2)
        fill_line(fifo, 2)
        with pytest.raises(RuntimeError):
            fifo.push_pixel(0, 0)

    def test_release_frees_capacity(self):
        fifo = LineStoreFifo(2, 2)
        fill_line(fifo, 2)
        fill_line(fifo, 2)
        freed = fifo.release_through(0)
        assert freed == 1
        assert fifo.resident_lines == [1]
        assert fifo.can_accept_pixel()
        fill_line(fifo, 2)
        assert fifo.resident_lines == [1, 2]

    def test_lines_resident_range_check(self):
        fifo = LineStoreFifo(4, 2)
        fill_line(fifo, 2)
        fill_line(fifo, 2)
        assert fifo.lines_resident(0, 1)
        assert not fifo.lines_resident(0, 2)
        assert fifo.lines_resident(-3, 1)  # negative clamped away

    def test_unlimited_same_cycle_reads(self):
        """All line blocks read in parallel: the one-cycle neighbourhood
        fetch needs arbitrarily many reads per cycle."""
        fifo = LineStoreFifo(9, 4)
        for line in range(9):
            fill_line(fifo, 4, base=line * 10)
        column = [fifo.read_pixel(2, line) for line in range(9)]
        assert len(column) == 9  # no budget, no error

    def test_read_validation(self):
        fifo = LineStoreFifo(2, 2)
        fill_line(fifo, 2)
        with pytest.raises(KeyError):
            fifo.read_pixel(0, 5)
        with pytest.raises(IndexError):
            fifo.read_pixel(2, 0)

    def test_reset(self):
        fifo = LineStoreFifo(2, 2)
        fill_line(fifo, 2)
        fifo.reset()
        assert fifo.empty
        assert fifo.next_line_to_fill == 0


class TestInputIntermediateMemory:
    def test_intra_is_one_sixteen_line_fifo(self):
        iim = InputIntermediateMemory(width=8, total_lines=IIM_LINES,
                                      images=1)
        assert len(iim.fifos) == 1
        assert iim.fifo(0).capacity_lines == IIM_LINES

    def test_inter_splits_into_two_eight_line_fifos(self):
        """Section 3.3: 'two FIFOs, one for every input image, with 8
        lines each'."""
        iim = InputIntermediateMemory(width=8, total_lines=IIM_LINES,
                                      images=2)
        assert len(iim.fifos) == 2
        assert all(f.capacity_lines == IIM_LINES_PER_IMAGE_INTER
                   for f in iim.fifos)

    def test_combined_signals(self):
        """'We will generate the same signals for both of the FIFOs.'"""
        iim = InputIntermediateMemory(width=2, total_lines=4, images=2)
        assert iim.empty
        fill_line(iim.fifo(0), 2)
        assert iim.empty  # the other FIFO is still empty
        fill_line(iim.fifo(1), 2)
        assert not iim.empty
        fill_line(iim.fifo(0), 2)
        assert iim.full  # one side full is FULL

    def test_memory_block_count_matches_paper(self):
        """16 lines x 2 banks = 'these 32 memory blocks are implemented
        in the FPGA embedded memory'."""
        iim = InputIntermediateMemory(width=8, total_lines=IIM_LINES,
                                      images=1)
        assert iim.memory_blocks == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            InputIntermediateMemory(width=8, total_lines=16, images=3)
        with pytest.raises(ValueError):
            InputIntermediateMemory(width=8, total_lines=15, images=2)
