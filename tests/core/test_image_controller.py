"""The image level controller, exercised directly."""

import pytest

from repro.addresslib import INTER_ABSDIFF, INTRA_COPY, INTRA_GRAD
from repro.core import (AddressEngine, BANK_WORDS, ZBTLayout, inter_config,
                        intra_config)
from repro.image import CIF, ImageFormat, QCIF, STRIP_LINES, noise_frame

ENGINE = AddressEngine()


class TestInputScheduling:
    def test_strip_jobs_interleave_images_for_inter(self, fmt32, frame32,
                                                    frame32_b):
        run = ENGINE.run_call(inter_config(INTER_ABSDIFF, fmt32),
                              frame32, frame32_b)
        labels = [i.name for i in run.pci.interrupts
                  if i.name.startswith("dma_done:in:")]
        assert labels == [
            "dma_done:in:img0:strip0", "dma_done:in:img1:strip0",
            "dma_done:in:img0:strip1", "dma_done:in:img1:strip1"]

    def test_strip_jobs_in_frame_order_for_intra(self, fmt48x32):
        frame = noise_frame(fmt48x32, seed=8)
        run = ENGINE.run_call(intra_config(INTRA_COPY, fmt48x32), frame)
        labels = [i.name for i in run.pci.interrupts
                  if i.name.startswith("dma_done:in:")]
        assert labels == ["dma_done:in:img0:strip0",
                          "dma_done:in:img0:strip1"]

    def test_input_complete_cycle_precedes_completion(self, fmt32,
                                                      frame32):
        run = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        assert 0 < run.input_complete_cycle < run.completion_cycle


class TestReadbackGating:
    def test_readback_interrupt_after_last_input_interrupt(self, fmt32,
                                                           frame32):
        run = ENGINE.run_call(intra_config(INTRA_GRAD, fmt32), frame32)
        cycles = {i.name: i.cycle for i in run.pci.interrupts}
        last_input = max(cycle for name, cycle in cycles.items()
                         if name.startswith("dma_done:in:"))
        assert cycles["readback_start"] >= last_input

    def test_readback_words_complete_and_ordered(self, fmt32, frame32):
        run = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        assert run.pci.words_to_host == 2 * fmt32.pixels
        # COPY on Y leaves luma intact: the first readback word (lower
        # word of pixel 0) must equal the source pixel's colour word.
        lower, _ = frame32.to_words()
        assert run.frame.y[0, 0] == frame32.y[0, 0]

    def test_scalar_readback_is_two_words(self, fmt32, frame32,
                                          frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True)
        run = ENGINE.run_call(config, frame32, frame32_b)
        assert run.pci.words_to_host == 2


class TestMemoryCapacity:
    """The paper's claim: the ZBT 'permits to store two input and one
    output image structure of either image type employed'."""

    @pytest.mark.parametrize("fmt", [QCIF, CIF], ids=lambda f: f.name)
    def test_paper_formats_fit_the_banks(self, fmt):
        intra = ZBTLayout(fmt, images_in=1)
        inter = ZBTLayout(fmt, images_in=2)
        # Deepest intra address: the last pixel of the last same-parity
        # strip stack.
        last_y = fmt.height - 1
        assert intra.input_address(fmt.width - 1, last_y) < BANK_WORDS
        assert inter.input_address(fmt.width - 1, last_y) < BANK_WORDS
        # Result bank: two words per pixel.
        assert intra.result_address(fmt.pixels - 1, 1) < BANK_WORDS

    def test_strip_height_at_least_neighbourhood_span(self):
        """16-line strips cover the 9-line worst-case input range."""
        from repro.addresslib import MAX_NEIGHBOURHOOD_LINES
        assert STRIP_LINES >= MAX_NEIGHBOURHOOD_LINES
