"""ZBT memory: bank ports, conflict budgets, the Figure 3 address map."""

import pytest

from repro.core import (BANK_COUNT, BANK_WORDS, BankPortConflict,
                        IMAGE0_BANKS, IMAGE1_BANKS, RESULT_BANKS,
                        ZBTLayout, ZBTMemory)
from repro.core.zbt import BANK_PORT_OPS_PER_CYCLE
from repro.image import CIF, ImageFormat, STRIP_LINES

FMT = ImageFormat("T8x48", 8, 48)


class TestBankGeometry:
    def test_six_banks_of_one_megabyte(self):
        """'6 Mbytes ... made up of 6 independent banks'."""
        assert BANK_COUNT == 6
        assert BANK_WORDS * 4 * BANK_COUNT == 6 * 1024 * 1024

    def test_bank_roles_are_disjoint(self):
        assert not set(IMAGE0_BANKS) & set(IMAGE1_BANKS)
        assert not set(RESULT_BANKS) & set(IMAGE0_BANKS + IMAGE1_BANKS)


class TestPortAccounting:
    def test_word_roundtrip(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        zbt.write(0, 100, 0xDEADBEEF)
        zbt.begin_cycle()
        assert zbt.read(0, 100) == 0xDEADBEEF

    def test_values_masked_to_32_bits(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        zbt.write(1, 0, 0x1FFFFFFFF)
        zbt.begin_cycle()
        assert zbt.read(1, 0) == 0xFFFFFFFF

    def test_port_budget_per_cycle(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        for _ in range(BANK_PORT_OPS_PER_CYCLE):
            zbt.write(2, 0, 1)
        with pytest.raises(BankPortConflict):
            zbt.write(2, 1, 1)

    def test_budget_resets_each_cycle(self):
        zbt = ZBTMemory()
        for _ in range(5):
            zbt.begin_cycle()
            zbt.write(3, 0, 1)
            zbt.write(3, 1, 1)
        assert zbt.word_accesses == 10

    def test_bank_free_reflects_budget(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        assert zbt.bank_free(0, ops=2)
        zbt.write(0, 0, 1)
        assert zbt.bank_free(0, ops=1)
        assert not zbt.bank_free(0, ops=2)
        assert zbt.banks_free([1, 2], ops=2)

    def test_access_cycles_count_cycles_not_words(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        zbt.write(0, 0, 1)
        zbt.write(1, 0, 1)  # parallel banks: still one cycle
        zbt.begin_cycle()   # idle cycle: no access
        zbt.begin_cycle()
        zbt.read(0, 0)
        assert zbt.word_accesses == 3
        assert zbt.access_cycles == 2

    def test_pixel_ops_counter(self):
        zbt = ZBTMemory()
        zbt.count_pixel_op()
        zbt.count_pixel_op()
        assert zbt.pixel_ops == 2

    def test_per_bank_stats(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        zbt.write(4, 0, 1)
        zbt.begin_cycle()
        zbt.read(4, 0)
        assert zbt.stats[4].reads == 1
        assert zbt.stats[4].writes == 1
        assert zbt.stats[0].total == 0

    def test_bank_index_validation(self):
        zbt = ZBTMemory()
        zbt.begin_cycle()
        with pytest.raises(IndexError):
            zbt.read(6, 0)

    def test_peek_poke_uncounted(self):
        zbt = ZBTMemory()
        zbt.poke(0, 5, 77)
        assert zbt.peek(0, 5) == 77
        assert zbt.word_accesses == 0


class TestIntraLayout:
    def test_strips_alternate_bank_pairs(self):
        """Block A (pair 0/1) and block B (pair 2/3): DMA into one never
        contends with TxU reads from the other."""
        layout = ZBTLayout(FMT, images_in=1)
        assert layout.input_banks(0, 0) == IMAGE0_BANKS
        assert layout.input_banks(0, 1) == IMAGE1_BANKS
        assert layout.input_banks(0, 2) == IMAGE0_BANKS

    def test_same_parity_strips_stack_in_address_space(self):
        layout = ZBTLayout(FMT, images_in=1)
        # Strip 0 line 0 and strip 2 line 0 share banks, different slots.
        a = layout.input_address(0, 0)
        b = layout.input_address(0, 2 * STRIP_LINES)
        assert b == a + layout.strip_words

    def test_addresses_unique_within_pair(self):
        layout = ZBTLayout(FMT, images_in=1)
        seen = set()
        for y in range(FMT.height):
            if (y // STRIP_LINES) % 2 != 0:
                continue  # other pair
            for x in range(FMT.width):
                address = layout.input_address(x, y)
                assert address not in seen
                seen.add(address)

    def test_intra_layout_rejects_second_image(self):
        layout = ZBTLayout(FMT, images_in=1)
        with pytest.raises(IndexError):
            layout.input_banks(1, 0)


class TestInterLayout:
    def test_each_image_owns_a_pair(self):
        layout = ZBTLayout(FMT, images_in=2)
        assert layout.input_banks(0, 0) == IMAGE0_BANKS
        assert layout.input_banks(0, 5) == IMAGE0_BANKS
        assert layout.input_banks(1, 0) == IMAGE1_BANKS

    def test_linear_addressing(self):
        layout = ZBTLayout(FMT, images_in=2)
        assert layout.input_address(3, 2) == 2 * FMT.width + 3

    def test_cif_image_fits_a_bank(self):
        layout = ZBTLayout(CIF, images_in=2)
        last = layout.input_address(CIF.width - 1, CIF.height - 1)
        assert last < BANK_WORDS


class TestResultLayout:
    def test_result_bank_switch(self):
        layout = ZBTLayout(FMT)
        assert layout.result_bank(switch_done=False) == RESULT_BANKS[0]
        assert layout.result_bank(switch_done=True) == RESULT_BANKS[1]

    def test_result_words_consecutive_same_bank(self):
        """'The upper and the lower part of each pixel are stored
        sequentially in the same memory bank'."""
        layout = ZBTLayout(FMT)
        assert layout.result_address(0, 0) == 0
        assert layout.result_address(0, 1) == 1
        assert layout.result_address(7, 0) == 14

    def test_result_overflow_detected(self):
        layout = ZBTLayout(FMT)
        with pytest.raises(IndexError):
            layout.result_address(BANK_WORDS, 0)

    def test_layout_validates_image_count(self):
        with pytest.raises(ValueError):
            ZBTLayout(FMT, images_in=3)
