"""The matrix register: LOAD/SHIFT semantics and reuse accounting."""

import pytest

from repro.addresslib import CON_0, CON_8
from repro.core import MatrixRegister


def full_values(base=0):
    return {off: (base + i, base + i + 100)
            for i, off in enumerate(CON_8.offsets)}


class TestLoad:
    def test_load_fills_all_slots(self):
        matrix = MatrixRegister(CON_8)
        matrix.load(full_values())
        assert matrix.filled
        assert matrix.load_count == 1
        assert matrix.pixels_fetched == 9

    def test_partial_load_rejected(self):
        matrix = MatrixRegister(CON_8)
        with pytest.raises(ValueError):
            matrix.load({(0, 0): (1, 2)})

    def test_unknown_offset_rejected(self):
        matrix = MatrixRegister(CON_0)
        with pytest.raises(KeyError):
            matrix.load({(5, 5): (1, 2)})


class TestShift:
    def test_shift_reuses_and_adds_fresh(self):
        matrix = MatrixRegister(CON_8)
        matrix.load(full_values())
        before = matrix.snapshot()
        fresh = {(1, dy): (900 + dy, 901 + dy) for dy in (-1, 0, 1)}
        matrix.shift((1, 0), fresh)
        after = matrix.snapshot()
        # Reused slots moved left by one.
        for dy in (-1, 0, 1):
            assert after[(0, dy)] == before[(1, dy)]
            assert after[(-1, dy)] == before[(0, dy)]
            assert after[(1, dy)] == fresh[(1, dy)]
        assert matrix.shift_count == 1
        assert matrix.pixels_fetched == 9 + 3

    def test_shift_requires_leading_edge(self):
        matrix = MatrixRegister(CON_8)
        matrix.load(full_values())
        with pytest.raises(ValueError):
            matrix.shift((1, 0), {})  # three slots would stay unfilled

    def test_vertical_shift(self):
        matrix = MatrixRegister(CON_8)
        matrix.load(full_values())
        before = matrix.snapshot()
        fresh = {(dx, 1): (800 + dx, 801 + dx) for dx in (-1, 0, 1)}
        matrix.shift((0, 1), fresh)
        after = matrix.snapshot()
        for dx in (-1, 0, 1):
            assert after[(dx, 0)] == before[(dx, 1)]

    def test_reuse_fraction_is_two_thirds_for_con8(self):
        """The pixel-reuse claim behind the IIM: a raster step refetches
        only 3 of 9 pixels."""
        matrix = MatrixRegister(CON_8)
        matrix.load(full_values())
        for step in range(5):
            fresh = {(1, dy): (step, step) for dy in (-1, 0, 1)}
            matrix.shift((1, 0), fresh)
        assert matrix.pixels_fetched == 9 + 5 * 3


class TestAccess:
    def test_value_lookup(self):
        matrix = MatrixRegister(CON_0)
        matrix.load({(0, 0): (7, 8)})
        assert matrix.value((0, 0)) == (7, 8)

    def test_empty_slot_raises(self):
        matrix = MatrixRegister(CON_8)
        with pytest.raises(KeyError):
            matrix.value((0, 0))

    def test_snapshot_is_a_copy(self):
        matrix = MatrixRegister(CON_0)
        matrix.load({(0, 0): (1, 2)})
        snap = matrix.snapshot()
        snap[(0, 0)] = (9, 9)
        assert matrix.value((0, 0)) == (1, 2)

    def test_reset(self):
        matrix = MatrixRegister(CON_8)
        matrix.load(full_values())
        matrix.reset()
        assert not matrix.filled
        assert matrix.load_count == 0
