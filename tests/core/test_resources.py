"""The Table 1 resource/timing estimator."""

import pytest

from repro.core import (XC2V3000, iim_brams, oim_brams, total_resources,
                        v1_module_inventory, v1_utilization_report)
from repro.core.resources import (CONTROL_STORE_BRAMS, DMA_FIFO_BRAMS,
                                  TimingModel)

PAPER = {"slices": 564, "flip_flops": 216, "luts": 349,
         "iobs": 60, "brams": 29, "gclks": 1}


class TestTotals:
    def test_totals_match_table1(self):
        totals = total_resources(v1_module_inventory())
        assert totals.slices == PAPER["slices"]
        assert totals.flip_flops == PAPER["flip_flops"]
        assert totals.luts == PAPER["luts"]
        assert totals.iobs == PAPER["iobs"]
        assert totals.brams == PAPER["brams"]
        assert totals.gclks == PAPER["gclks"]

    def test_bram_budget_decomposition(self):
        """29 = IIM line stores + OIM + DMA FIFOs + control store."""
        assert (iim_brams() + oim_brams() + DMA_FIFO_BRAMS
                + CONTROL_STORE_BRAMS) == PAPER["brams"]

    def test_memories_dominate_brams(self):
        """'The high amount of block RAM used ... is due to the IIM and
        OIM memories.'"""
        assert iim_brams() + oim_brams() > PAPER["brams"] / 2

    def test_inventory_covers_architecture_blocks(self):
        names = {m.name for m in v1_module_inventory()}
        for expected in ("pci_interface", "image_level_controller",
                         "input_txu", "output_txu", "iim_line_stores",
                         "oim_line_stores", "plc_control_fsm",
                         "plc_instruction_fsm", "plc_arbiter",
                         "plc_startpipeline", "pu_stage1_scan_counters",
                         "pu_stage3_alu"):
            assert expected in names


class TestUtilization:
    def test_device_is_the_paper_part(self):
        assert XC2V3000.name == "2v3000ff1152-5"
        assert XC2V3000.brams == 96
        assert XC2V3000.slices == 14336

    def test_percentages_match_table1_truncation(self):
        report = v1_utilization_report()
        rendered = report.render()
        # Exact strings from the paper's device utilisation summary.
        assert "564 out of  14336" in rendered
        assert "216 out of  28672" in rendered
        assert "349 out of  28672" in rendered
        assert "60 out of    720" in rendered
        assert "29 out of     96" in rendered
        assert "30%" in rendered   # BRAMs: the dominant resource
        assert "3%" in rendered    # slices: truncated like ISE prints it

    def test_logic_footprint_tiny(self):
        """The design uses <= 4 % of the device's logic -- plenty of room
        'for a possible extension of the design with other addressing
        schemes'."""
        percent = v1_utilization_report().utilization_percent()
        assert percent["slices"] < 4.0
        assert percent["luts"] < 2.0
        assert percent["brams"] > 25.0

    def test_rows_structure(self):
        rows = v1_utilization_report().rows()
        assert len(rows) == 6
        assert rows[0][1] == PAPER["slices"]


class TestTiming:
    def test_min_period_matches_table1(self):
        timing = TimingModel()
        assert timing.min_period_ns == pytest.approx(9.784, abs=1e-3)

    def test_max_frequency_matches_table1(self):
        timing = TimingModel()
        assert timing.max_frequency_mhz == pytest.approx(102.208, abs=0.01)

    def test_design_clears_the_66mhz_bus_clock(self):
        """Section 4.1: the PCI bus (66 MHz) is the bottleneck; the FPGA
        fabric has headroom."""
        assert TimingModel().max_frequency_mhz > 66.0
