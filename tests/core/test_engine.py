"""The assembled engine: golden equivalence, dataflow, accounting.

Every cycle-level run is checked bit-exact against the vector executor --
the central correctness contract of the coprocessor model.
"""

import pytest

from repro.addresslib import (COLUMN_9, CON_24, ChannelSet, INTER_ABSDIFF,
                              INTER_AVG, INTER_MUL, INTRA_BOX3, INTRA_COPY,
                              INTRA_ERODE, INTRA_GRAD, INTRA_MEDIAN3,
                              fir_op)
from repro.core import (AddressEngine, EngineDeadlock, IIM_LINES,
                        inter_config, intra_config)
from repro.image import ImageFormat, noise_frame

ENGINE = AddressEngine()


def run_and_check(config, a, b=None):
    result = ENGINE.run_call(config, a, b)
    golden = AddressEngine.run_functional(config, a, b)
    if config.produces_image:
        assert result.frame.equals(golden)
    else:
        assert result.scalar == golden
    return result


class TestGoldenEquivalence:
    @pytest.mark.parametrize("op", [INTRA_COPY, INTRA_GRAD, INTRA_BOX3,
                                    INTRA_ERODE, INTRA_MEDIAN3],
                             ids=lambda op: op.name)
    def test_intra_ops(self, fmt32, op):
        frame = noise_frame(fmt32, seed=1)
        run_and_check(intra_config(op, fmt32), frame)

    @pytest.mark.parametrize("op", [INTER_ABSDIFF, INTER_AVG, INTER_MUL],
                             ids=lambda op: op.name)
    def test_inter_ops(self, fmt32, op):
        a = noise_frame(fmt32, seed=2)
        b = noise_frame(fmt32, seed=3)
        run_and_check(inter_config(op, fmt32), a, b)

    def test_yuv_channels(self, fmt32):
        frame = noise_frame(fmt32, seed=4)
        run_and_check(intra_config(INTRA_GRAD, fmt32, ChannelSet.YUV),
                      frame)

    def test_meta_channels_pass_through(self, fmt32):
        """Alfa/Aux ride along untouched in the upper word."""
        frame = noise_frame(fmt32, seed=5)
        result = ENGINE.run_call(intra_config(INTRA_GRAD, fmt32), frame)
        import numpy as np
        assert np.array_equal(result.frame.alfa, frame.alfa)
        assert np.array_equal(result.frame.aux, frame.aux)

    def test_non_square_frame(self, fmt48x32):
        frame = noise_frame(fmt48x32, seed=6)
        run_and_check(intra_config(INTRA_GRAD, fmt48x32), frame)

    def test_nine_line_worst_case_neighbourhood(self, fmt32):
        """Figure 4's perpendicular 9-line column still runs (the IIM
        holds 16 lines, enough for the worst case)."""
        op = fir_op("col9_avg", COLUMN_9, [1] * 9, shift=3)
        frame = noise_frame(fmt32, seed=7)
        run_and_check(intra_config(op, fmt32), frame)

    def test_5x5_neighbourhood(self, fmt32):
        op = fir_op("box5", CON_24, [1] * 25, shift=5)
        frame = noise_frame(fmt32, seed=8)
        run_and_check(intra_config(op, fmt32), frame)

    def test_scalar_reduce(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True)
        run_and_check(config, frame32, frame32_b)

    def test_special_inter_full_frames(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True,
                              requires_full_frames=True)
        run_and_check(config, frame32, frame32_b)


class TestAccounting:
    def test_table2_pixel_ops_intra(self, fmt32, frame32):
        """One parallel fetch + one store per pixel: the HW column."""
        result = ENGINE.run_call(intra_config(INTRA_GRAD, fmt32), frame32)
        assert result.zbt_pixel_ops == 2 * fmt32.pixels

    def test_reduce_halves_pixel_ops(self, fmt32, frame32, frame32_b):
        config = inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True)
        result = ENGINE.run_call(config, frame32, frame32_b)
        # Two input TxUs read every pixel once; nothing is stored.
        assert result.zbt_pixel_ops == 2 * fmt32.pixels
        assert result.output_txu is None

    def test_matrix_reuse_statistics(self, fmt32, frame32):
        result = ENGINE.run_call(intra_config(INTRA_GRAD, fmt32), frame32)
        assert result.matrix_loads == fmt32.height      # one per row
        assert result.matrix_shifts == fmt32.pixels - fmt32.height
        expected_fetches = (fmt32.height * 9
                            + (fmt32.pixels - fmt32.height) * 3)
        assert result.matrix_pixels_fetched == expected_fetches

    def test_every_pixel_cycle_retired(self, fmt32, frame32):
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        assert result.plc_stats.issued_pixel_cycles == fmt32.pixels
        assert result.plc_stats.retired_pixel_cycles == fmt32.pixels

    def test_pci_word_totals(self, fmt32, frame32):
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        assert result.pci.words_to_board == 2 * fmt32.pixels
        assert result.pci.words_to_host == 2 * fmt32.pixels

    def test_completion_interrupt_raised(self, fmt32, frame32):
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        names = [i.name for i in result.pci.interrupts]
        assert "call_done" in names
        assert "readback_start" in names
        assert sum(1 for n in names if n.startswith("dma_done:in:")) == \
            fmt32.strips


class TestDataflowBehaviour:
    def test_processing_overlaps_input_transfer(self, fmt32, frame32):
        """Strip double buffering: pixel-cycles retire before the input
        DMA finishes (Figure 3's whole point)."""
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        # The input completes well before the call does; the PLC must
        # have been working during the input phase, i.e. the total run
        # is far shorter than serial transfer + processing + readback.
        serial = (result.input_complete_cycle + fmt32.pixels
                  + 2 * fmt32.pixels)
        assert result.cycles < serial

    def test_special_inter_defers_processing(self, fmt32, frame32,
                                             frame32_b):
        normal = ENGINE.run_call(
            inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True),
            frame32, frame32_b)
        special = ENGINE.run_call(
            inter_config(INTER_ABSDIFF, fmt32, reduce_to_scalar=True,
                         requires_full_frames=True),
            frame32, frame32_b)
        assert special.cycles > normal.cycles
        assert special.plc_stats.stall_disabled > 0

    def test_oim_absorbs_rate_mismatch(self, fmt32, frame32):
        """The PU peaks above the output TxU's pixel/cycle: the OIM must
        actually buffer (peak occupancy > 1) yet never overflow."""
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt32), frame32)
        assert 1 < result.oim_peak_pixels <= IIM_LINES * fmt32.width

    def test_deadlock_guard(self, fmt16, frame16):
        with pytest.raises(EngineDeadlock):
            ENGINE.run_call(intra_config(INTRA_COPY, fmt16), frame16,
                            max_cycles=10)


class TestValidation:
    def test_inter_requires_two_frames(self, fmt32, frame32):
        with pytest.raises(ValueError):
            ENGINE.run_call(inter_config(INTER_ABSDIFF, fmt32), frame32)

    def test_frame_format_must_match(self, fmt16, fmt32):
        frame = noise_frame(fmt32, seed=9)
        with pytest.raises(ValueError):
            ENGINE.run_call(intra_config(INTRA_COPY, fmt16), frame)

    def test_seconds_property(self, fmt16, frame16):
        result = ENGINE.run_call(intra_config(INTRA_COPY, fmt16), frame16)
        assert result.seconds == pytest.approx(
            result.cycles / 66_000_000)
