"""The v2 segment-addressing unit (the paper's announced next step)."""

import numpy as np
import pytest

from repro.addresslib import CON_4, SegmentProcessor, luma_delta_criterion
from repro.core import (QUEUE_CAPACITY, SegmentCallConfig, SegmentUnit,
                        V2_CONNECTIVITY, v2_utilization_report)
from repro.image import ImageFormat, Frame, blob_frame

FMT = ImageFormat("SU32", 32, 32)


def square_frame():
    frame = Frame(FMT)
    frame.y[:] = 20
    frame.y[8:20, 8:20] = 180
    return frame


class TestSemantics:
    def test_matches_software_segment_processor(self):
        """The hardware unit and the software scheme implement the same
        expansion -- identical labels and geodesic distances."""
        frame = square_frame()
        seeds = [(12, 12), (2, 2)]
        software = SegmentProcessor(CON_4).expand(
            frame, seeds, luma_delta_criterion(15))
        unit = SegmentUnit()
        run = unit.run_call(SegmentCallConfig(FMT, luma_delta=15),
                            frame, seeds)
        assert np.array_equal(run.labels, software.labels)
        assert np.array_equal(run.distance, software.distance)
        assert run.pixels_processed == software.pixels_processed

    def test_connectivity_matches_con4_order(self):
        """Same neighbour visiting order as the software CON_4 path, so
        tie-breaking between competing seeds is identical."""
        expected = tuple(off for off in CON_4.offsets if off != (0, 0))
        assert V2_CONNECTIVITY == expected

    def test_max_pixels_cap(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        run = SegmentUnit().run_call(
            SegmentCallConfig(FMT, luma_delta=5), frame, [(16, 16)],
            max_pixels=40)
        assert run.pixels_processed == 40

    def test_seed_validation(self):
        with pytest.raises(ValueError):
            SegmentUnit().run_call(SegmentCallConfig(FMT, luma_delta=5),
                                   Frame(FMT), [(99, 0)])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            SegmentCallConfig(FMT, luma_delta=300)

    def test_frame_format_check(self):
        other = Frame(ImageFormat("SUo", 8, 8))
        with pytest.raises(ValueError):
            SegmentUnit().run_call(SegmentCallConfig(FMT, luma_delta=5),
                                   other, [(0, 0)])


class TestAccounting:
    def test_interior_pixel_costs_four_cycles(self):
        """pop+centre (1) + 4 neighbours at 2/cycle (2) + label (1)."""
        frame = square_frame()
        run = SegmentUnit().run_call(
            SegmentCallConfig(FMT, luma_delta=15), frame, [(12, 12)])
        # The 12x12 square has mostly interior pixels.
        assert run.cycles_per_processed_pixel == pytest.approx(4.0,
                                                               abs=0.1)

    def test_resident_frame_skips_input_dma(self):
        frame = square_frame()
        unit = SegmentUnit()
        cold = unit.run_call(SegmentCallConfig(FMT, luma_delta=15),
                             frame, [(12, 12)])
        warm = unit.run_call(
            SegmentCallConfig(FMT, luma_delta=15, frame_resident=True),
            frame, [(12, 12)])
        assert cold.input_cycles == 2 * FMT.pixels
        assert warm.input_cycles == 0
        assert warm.total_cycles < cold.total_cycles

    def test_queue_peak_tracked(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        run = SegmentUnit().run_call(
            SegmentCallConfig(FMT, luma_delta=5), frame, [(16, 16)])
        assert 0 < run.queue_peak < QUEUE_CAPACITY

    def test_closed_form_estimate_tracks_measurement(self):
        frame = Frame(FMT)
        frame.y[:] = 100
        config = SegmentCallConfig(FMT, luma_delta=5)
        run = SegmentUnit().run_call(config, frame, [(16, 16)])
        estimate = SegmentUnit().call_cycles_estimate(
            config, run.pixels_processed)
        assert estimate == pytest.approx(run.total_cycles, rel=0.05)


class TestV2Resources:
    def test_extension_fits_the_device(self):
        """'There is enough free memory for a possible extension of the
        design with other addressing schemes.'"""
        report = v2_utilization_report()
        totals = report.totals
        assert totals.brams == 32          # +3 over the v1 29
        assert totals.brams <= report.device.brams
        assert totals.slices < 0.06 * report.device.slices

    def test_v2_adds_the_segment_blocks(self):
        names = {m.name for m in v2_utilization_report().modules}
        assert "seg_work_queue" in names
        assert "seg_criteria_unit" in names


class TestQueueCapacity:
    def test_overflow_raises(self):
        from repro.core import QueueOverflow
        frame = Frame(FMT)
        frame.y[:] = 100
        tiny = SegmentUnit(queue_capacity=4)
        with pytest.raises(QueueOverflow):
            tiny.run_call(SegmentCallConfig(FMT, luma_delta=5),
                          frame, [(16, 16)])

    def test_cif_flood_fits_the_default_queue(self):
        """A whole-CIF flood's front scales with the perimeter and stays
        far under the 2k-entry BRAM queue."""
        from repro.image import CIF
        frame = Frame(CIF)
        frame.y[:] = 100
        run = SegmentUnit().run_call(
            SegmentCallConfig(CIF, luma_delta=5), frame,
            [(CIF.width // 2, CIF.height // 2)])
        assert run.pixels_processed == CIF.pixels
        assert run.queue_peak < QUEUE_CAPACITY
