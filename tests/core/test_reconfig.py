"""Dynamic partial reconfiguration of the pixel-processing block."""

import pytest

from repro.addresslib import INTRA_BOX3, INTRA_GRAD, INTRA_MEDIAN3
from repro.core import (ReconfigurableEngine, ReconfigurationModel,
                        intra_config)
from repro.image import ImageFormat, noise_frame

FMT = ImageFormat("RC", 48, 48)


class TestReconfigurationModel:
    def test_partial_much_faster_than_full(self):
        model = ReconfigurationModel()
        assert model.partial_seconds < model.full_seconds
        assert model.speedup == pytest.approx(1 / 0.015, rel=0.01)

    def test_times_scale_with_bitstream(self):
        model = ReconfigurationModel(partial_bitstream_bytes=1000,
                                     config_bandwidth=1000)
        assert model.partial_seconds == 1.0


class TestReconfigurableEngine:
    def test_no_reconfig_for_repeated_op(self):
        engine = ReconfigurableEngine()
        schedule = [(intra_config(INTRA_GRAD, FMT),)] * 5
        report = engine.run_schedule(schedule)
        assert report.reconfigurations == 0
        assert report.reconfig_seconds == 0.0
        assert report.calls == 5

    def test_reconfig_on_op_change(self):
        engine = ReconfigurableEngine()
        schedule = [(intra_config(INTRA_GRAD, FMT),),
                    (intra_config(INTRA_BOX3, FMT),),
                    (intra_config(INTRA_GRAD, FMT),)]
        report = engine.run_schedule(schedule)
        assert report.reconfigurations == 2
        assert report.per_op_calls == {"intra_grad": 2, "intra_box3": 1}

    def test_dynamic_beats_static_on_alternating_ops(self):
        """The outlook's point: with partial reconfiguration, operation
        switches stop dominating the runtime."""
        ops = [INTRA_GRAD, INTRA_BOX3, INTRA_MEDIAN3]
        schedule = [(intra_config(ops[i % 3], FMT),) for i in range(12)]
        dynamic = ReconfigurableEngine(dynamic=True).run_schedule(schedule)
        static = ReconfigurableEngine(dynamic=False).run_schedule(schedule)
        assert dynamic.call_seconds == pytest.approx(static.call_seconds)
        assert dynamic.reconfig_seconds < 0.05 * static.reconfig_seconds
        assert dynamic.reconfig_fraction < static.reconfig_fraction

    def test_first_op_load_is_free(self):
        """The initial configuration happens at board bring-up, not per
        schedule."""
        engine = ReconfigurableEngine()
        engine.run_schedule([(intra_config(INTRA_GRAD, FMT),)])
        assert engine.reconfigurations == 0

    def test_cycle_model_path(self):
        frame = noise_frame(FMT, seed=1)
        engine = ReconfigurableEngine()
        report = engine.run_schedule(
            [(intra_config(INTRA_GRAD, FMT), frame)], use_cycle_model=True)
        assert report.call_seconds > 0

    def test_run_call_passthrough(self):
        frame = noise_frame(FMT, seed=2)
        engine = ReconfigurableEngine()
        run = engine.run_call(intra_config(INTRA_GRAD, FMT), frame)
        assert run.frame is not None
        run2 = engine.run_call(intra_config(INTRA_BOX3, FMT), frame)
        assert engine.reconfigurations == 1
        assert run2.frame is not None
