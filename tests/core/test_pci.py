"""The PCI/DMA model: rates, job sequencing, stalls, interrupts."""

import pytest

from repro.core import (DMAJob, PCIBus, PCI_CLOCK_HZ,
                        PCI_PEAK_BYTES_PER_SECOND, PCI_WORD_BITS)


def counting_job(label, total, to_board=True, gate=None):
    moved = []

    def transfer(index):
        if gate is not None and not gate(index):
            return False
        moved.append(index)
        return True

    return DMAJob(label=label, total_words=total,
                  transfer_word=transfer, to_board=to_board), moved


class TestRates:
    def test_paper_bandwidth_figures(self):
        """66 MHz x 32 bits = 264 MB/s (the section 4.1 figure)."""
        assert PCI_CLOCK_HZ == 66_000_000
        assert PCI_WORD_BITS == 32
        assert PCI_PEAK_BYTES_PER_SECOND == 264_000_000

    def test_one_word_per_cycle(self):
        bus = PCIBus(job_overhead_cycles=0)
        job, moved = counting_job("j", 10)
        bus.enqueue(job)
        for cycle in range(10):
            bus.tick(cycle)
        assert moved == list(range(10))
        assert bus.busy_cycles == 10


class TestJobSequencing:
    def test_jobs_run_in_order(self):
        bus = PCIBus(job_overhead_cycles=0)
        ja, moved_a = counting_job("a", 3)
        jb, moved_b = counting_job("b", 3)
        bus.enqueue(ja)
        bus.enqueue(jb)
        for cycle in range(6):
            bus.tick(cycle)
        assert len(moved_a) == 3 and len(moved_b) == 3
        assert ja.complete and jb.complete

    def test_overhead_cycles_precede_payload(self):
        bus = PCIBus(job_overhead_cycles=4)
        job, moved = counting_job("j", 2)
        bus.enqueue(job)
        for cycle in range(4):
            bus.tick(cycle)
        assert moved == []
        bus.tick(4)
        bus.tick(5)
        assert len(moved) == 2
        assert bus.overhead_cycles == 4

    def test_idle_when_no_jobs(self):
        bus = PCIBus()
        assert bus.tick(0) is None
        assert bus.idle_cycles == 1
        assert bus.idle

    def test_pending_jobs_and_idle(self):
        bus = PCIBus(job_overhead_cycles=0)
        job, _ = counting_job("j", 1)
        bus.enqueue(job)
        assert not bus.idle
        assert bus.pending_jobs == 1
        bus.tick(0)
        assert bus.idle


class TestStalls:
    def test_unready_word_stalls_without_progress(self):
        ready = {"ok": False}
        bus = PCIBus(job_overhead_cycles=0)
        job, moved = counting_job("j", 1, gate=lambda i: ready["ok"])
        bus.enqueue(job)
        bus.tick(0)
        assert moved == [] and bus.stall_cycles == 1
        ready["ok"] = True
        bus.tick(1)
        assert moved == [0]

    def test_utilization(self):
        bus = PCIBus(job_overhead_cycles=2)
        job, _ = counting_job("j", 2)
        bus.enqueue(job)
        for cycle in range(4):
            bus.tick(cycle)
        assert bus.utilization() == pytest.approx(0.5)


class TestInterruptsAndStats:
    def test_completion_interrupt_raised(self):
        bus = PCIBus(job_overhead_cycles=0)
        job, _ = counting_job("strip0", 2)
        bus.enqueue(job)
        bus.tick(0)
        assert bus.interrupts == []
        bus.tick(1)
        assert [i.name for i in bus.interrupts] == ["dma_done:strip0"]
        assert bus.interrupts[0].cycle == 1

    def test_direction_word_counters(self):
        bus = PCIBus(job_overhead_cycles=0)
        jin, _ = counting_job("in", 3, to_board=True)
        jout, _ = counting_job("out", 2, to_board=False)
        bus.enqueue(jin)
        bus.enqueue(jout)
        for cycle in range(5):
            bus.tick(cycle)
        assert bus.words_to_board == 3
        assert bus.words_to_host == 2
        assert bus.total_bytes == 20
