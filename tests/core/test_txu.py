"""Transmission units: ZBT <-> IIM/OIM line movement and arbitration."""

import pytest

from repro.core import (IIM_LINES, InputIntermediateMemory,
                        InputTransmissionUnit, OutputIntermediateMemory,
                        OutputTransmissionUnit, RESULT_BANKS, ZBTLayout,
                        ZBTMemory)
from repro.image import ImageFormat, STRIP_LINES, noise_frame

FMT = ImageFormat("T4x32", 4, 32)


def loaded_zbt(frame, layout):
    """A ZBT pre-loaded with the frame's words (uncounted pokes)."""
    zbt = ZBTMemory()
    lower, upper = frame.to_words()
    for y in range(frame.height):
        banks = layout.input_banks(0, y // STRIP_LINES)
        for x in range(frame.width):
            address = layout.input_address(x, y)
            zbt.poke(banks[0], address, int(lower[y, x]))
            zbt.poke(banks[1], address, int(upper[y, x]))
    return zbt


class TestInputTxu:
    def setup_method(self):
        self.layout = ZBTLayout(FMT, images_in=1)
        self.frame = noise_frame(FMT, seed=77)
        self.zbt = loaded_zbt(self.frame, self.layout)
        self.iim = InputIntermediateMemory(FMT.width, IIM_LINES, 1)
        self.txu = InputTransmissionUnit(self.zbt, self.layout, 0,
                                         self.iim.fifo(0))

    def tick_n(self, n):
        for _ in range(n):
            self.zbt.begin_cycle()
            self.txu.tick()

    def test_waits_for_strip_availability(self):
        self.tick_n(5)
        assert self.txu.pixels_moved == 0
        assert self.txu.stall_no_strip == 5

    def test_streams_one_pixel_per_cycle(self):
        self.txu.strips_available = 1
        self.tick_n(FMT.width)
        assert self.txu.pixels_moved == FMT.width
        assert self.iim.fifo(0).resident_lines == [0]

    def test_delivered_pixels_match_frame(self):
        self.txu.strips_available = 2
        self.tick_n(FMT.width * 2)
        lower, upper = self.frame.to_words()
        for x in range(FMT.width):
            assert self.iim.fifo(0).read_pixel(x, 1) == \
                (int(lower[1, x]), int(upper[1, x]))

    def test_stops_at_strip_boundary(self):
        self.txu.strips_available = 1
        self.tick_n(FMT.width * STRIP_LINES + 10)
        assert self.txu.pixels_moved == FMT.width * STRIP_LINES
        assert self.txu.stall_no_strip == 10

    def test_counts_one_pixel_op_per_pixel(self):
        self.txu.strips_available = 2
        self.tick_n(30)
        assert self.zbt.pixel_ops == 30
        assert self.zbt.word_accesses == 60  # two sibling banks

    def test_stalls_when_iim_full(self):
        self.txu.strips_available = 2
        self.tick_n(FMT.width * IIM_LINES)  # fill all 16 line stores
        assert self.iim.full
        self.tick_n(1)
        assert self.txu.stall_iim_full == 1

    def test_yields_bank_ports(self):
        self.txu.strips_available = 1
        self.zbt.begin_cycle()
        # A higher-priority client saturates one sibling bank first.
        self.zbt.write(0, 0, 1)
        self.zbt.write(0, 1, 1)
        assert not self.txu.tick()
        assert self.txu.stall_bank_busy == 1

    def test_done_after_whole_frame(self):
        self.txu.strips_available = FMT.strips
        self.tick_n(FMT.pixels // 2 + 5)
        # IIM holds 16 of 32 lines; release as a consumer would.
        self.iim.fifo(0).release_through(15)
        self.tick_n(FMT.pixels)
        assert self.txu.done
        assert self.txu.pixels_moved == FMT.pixels


class TestOutputTxu:
    def setup_method(self):
        self.layout = ZBTLayout(FMT, images_in=1)
        self.zbt = ZBTMemory()
        self.oim = OutputIntermediateMemory(FMT.width, 4)
        self.txu = OutputTransmissionUnit(self.zbt, self.layout, self.oim)

    def tick(self):
        self.zbt.begin_cycle()
        return self.txu.tick()

    def test_writes_pixel_words_sequentially_same_bank(self):
        self.oim.push(0, 0xAAAA, 0xBBBB)
        assert self.tick()
        bank = RESULT_BANKS[0]
        assert self.zbt.peek(bank, 0) == 0xAAAA
        assert self.zbt.peek(bank, 1) == 0xBBBB
        assert self.txu.words_written == 2
        assert self.txu.pixels_written == 1

    def test_one_pixel_per_cycle(self):
        for i in range(3):
            self.oim.push(i, i, i)
        assert self.tick() and self.tick() and self.tick()
        assert self.txu.pixels_written == 3
        assert self.zbt.peek(RESULT_BANKS[0], 4) == 2

    def test_stalls_on_empty_oim(self):
        assert not self.tick()
        assert self.txu.stall_oim_empty == 1

    def test_bank_switch_redirects_new_pixels(self):
        self.oim.push(0, 1, 2)
        self.tick()
        self.txu.switch_result_bank()
        self.oim.push(1, 3, 4)
        self.tick()
        assert self.zbt.peek(RESULT_BANKS[0], 0) == 1
        assert self.zbt.peek(RESULT_BANKS[1], 0) == 3
        assert self.txu.bank_words == [2, 2]

    def test_switch_only_once(self):
        self.txu.switch_result_bank()
        with pytest.raises(RuntimeError):
            self.txu.switch_result_bank()

    def test_yields_when_bank_port_busy(self):
        self.oim.push(0, 1, 2)
        self.zbt.begin_cycle()
        self.zbt.read(RESULT_BANKS[0], 0)  # readback DMA holds one port
        assert not self.txu.tick()         # needs two ports for a pixel
        assert self.txu.stall_bank_busy == 1

    def test_counts_one_pixel_op_per_pixel(self):
        self.oim.push(0, 1, 2)
        self.tick()
        assert self.zbt.pixel_ops == 1
