"""Engine edge geometries and channel configurations."""

import pytest

from repro.addresslib import (COLUMN_9, ChannelSet, INTER_ABSDIFF,
                              INTER_MIN, INTRA_GRAD, fir_op)
from repro.core import AddressEngine, inter_config, intra_config
from repro.image import ImageFormat, QCIF, noise_frame

ENGINE = AddressEngine()


def check(config, a, b=None):
    run = ENGINE.run_call(config, a, b)
    golden = AddressEngine.run_functional(config, a, b)
    if config.produces_image:
        assert run.frame.equals(golden)
    else:
        assert run.scalar == golden
    return run


class TestBorderGeometries:
    def test_column9_taller_than_frame(self):
        """A 9-line neighbourhood on an 8-line frame: every fetch clamps
        vertically, and the whole frame is a single partial strip."""
        fmt = ImageFormat("E8", 12, 8)
        op = fir_op("edge_col9", COLUMN_9, [1] * 9, shift=3)
        check(intra_config(op, fmt), noise_frame(fmt, seed=1))

    def test_minimum_width_frame(self):
        fmt = ImageFormat("E4w", 4, 32)
        check(intra_config(INTRA_GRAD, fmt), noise_frame(fmt, seed=2))

    def test_single_row_strip_tail(self):
        """A height that leaves a 1-line final strip."""
        fmt = ImageFormat("E17", 8, 17)
        check(intra_config(INTRA_GRAD, fmt), noise_frame(fmt, seed=3))

    def test_wide_flat_frame(self):
        fmt = ImageFormat("E64x4", 64, 4)
        check(intra_config(INTRA_GRAD, fmt), noise_frame(fmt, seed=4))


class TestChannelConfigurations:
    def test_inter_yuv_image(self, fmt32, frame32, frame32_b):
        check(inter_config(INTER_MIN, fmt32, ChannelSet.YUV),
              frame32, frame32_b)

    def test_inter_yuv_reduce(self, fmt32, frame32, frame32_b):
        check(inter_config(INTER_ABSDIFF, fmt32, ChannelSet.YUV,
                           reduce_to_scalar=True), frame32, frame32_b)

    def test_yuv_reduce_sums_all_channels(self, fmt32, frame32,
                                          frame32_b):
        y_only = ENGINE.run_call(
            inter_config(INTER_ABSDIFF, fmt32, ChannelSet.Y,
                         reduce_to_scalar=True), frame32, frame32_b)
        yuv = ENGINE.run_call(
            inter_config(INTER_ABSDIFF, fmt32, ChannelSet.YUV,
                         reduce_to_scalar=True), frame32, frame32_b)
        assert yuv.scalar > y_only.scalar


class TestPaperFormatSimulation:
    def test_qcif_full_cycle_simulation(self):
        """One complete QCIF call through the cycle model: the paper's
        smaller format end to end, with the exact closed-form time."""
        frame = noise_frame(QCIF, seed=5)
        config = intra_config(INTRA_GRAD, QCIF)
        run = check(config, frame)
        from repro.perf import EngineTimingModel
        assert EngineTimingModel().call_cycles(config) == run.cycles
        assert run.zbt_pixel_ops == 2 * QCIF.pixels
        # 9 strips' worth of input interrupts + readback + completion.
        assert len(run.pci.interrupts) == QCIF.strips + 3


class TestDegenerateFrames:
    """Degenerate geometries the model must survive gracefully."""

    @pytest.mark.parametrize("w,h", [(1, 1), (2, 2), (1, 8), (8, 1)],
                             ids=["1x1", "2x2", "1x8", "8x1"])
    def test_tiny_frames_run_and_match_golden(self, w, h):
        fmt = ImageFormat(f"TINY{w}x{h}", w, h)
        frame = noise_frame(fmt, seed=1)
        config = intra_config(INTRA_GRAD, fmt)
        run = ENGINE.run_call(config, frame)
        assert run.frame.equals(AddressEngine.run_functional(config,
                                                             frame))

    def test_one_pixel_inter(self):
        fmt = ImageFormat("TINY1", 1, 1)
        a = noise_frame(fmt, seed=2)
        b = noise_frame(fmt, seed=3)
        config = inter_config(INTER_ABSDIFF, fmt)
        run = ENGINE.run_call(config, a, b)
        assert run.frame.equals(AddressEngine.run_functional(config, a, b))
        assert run.zbt_pixel_ops == 3  # two fetches + one store


class TestEmptySeeds:
    def test_software_segment_with_no_seeds(self):
        from repro.addresslib import AddressLib, luma_delta_criterion
        fmt = ImageFormat("ES16", 16, 16)
        frame = noise_frame(fmt, seed=4)
        result = AddressLib().segment(frame, [], luma_delta_criterion(5))
        assert result.pixels_processed == 0
        assert (result.labels == -1).all()

    def test_v2_unit_with_no_seeds(self):
        from repro.core import SegmentCallConfig, SegmentUnit
        fmt = ImageFormat("ES16b", 16, 16)
        frame = noise_frame(fmt, seed=5)
        run = SegmentUnit().run_call(SegmentCallConfig(fmt, 5), frame, [])
        assert run.pixels_processed == 0
        assert run.expansion_cycles == 0
