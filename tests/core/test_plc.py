"""The pixel level controller: pipeline overlap, stalls, the arbiter."""

import pytest

from repro.addresslib import INTRA_COPY, INTRA_GRAD
from repro.core import (Arbiter, ArbiterConflict, IIM_LINES,
                        InputIntermediateMemory, OutputIntermediateMemory,
                        PixelLevelController, ProcessUnit, intra_config)
from repro.image import ImageFormat, noise_frame

FMT = ImageFormat("T6x4", 6, 4)


def make_plc(op=INTRA_COPY, fmt=FMT, preload_lines=None, oim_lines=4):
    """A PLC over a hand-fed IIM (no TxU/DMA in the loop)."""
    config = intra_config(op, fmt)
    iim = InputIntermediateMemory(fmt.width, IIM_LINES, images=1)
    oim = OutputIntermediateMemory(fmt.width, oim_lines)
    pu = ProcessUnit(config, iim, oim)
    plc = PixelLevelController(pu)
    frame = noise_frame(fmt, seed=55)
    lower, upper = frame.to_words()
    lines = fmt.height if preload_lines is None else preload_lines
    for y in range(lines):
        for x in range(fmt.width):
            iim.fifo(0).push_pixel(int(lower[y, x]), int(upper[y, x]))
    return plc, iim, oim


class TestArbiter:
    def test_conflicting_claim_raises(self):
        arbiter = Arbiter()
        arbiter.begin_cycle()
        arbiter.claim("alu", "OP#0")
        with pytest.raises(ArbiterConflict):
            arbiter.claim("alu", "OP#1")

    def test_claims_reset_per_cycle(self):
        arbiter = Arbiter()
        arbiter.begin_cycle()
        arbiter.claim("alu", "OP#0")
        arbiter.begin_cycle()
        arbiter.claim("alu", "OP#1")
        assert arbiter.total_claims == 2


class TestPipelineOverlap:
    def test_startpipeline_fills_all_stages(self):
        """'Instructions of different pixel-cycles in the different
        stages of the Process Unit' -- steady state has every stage busy."""
        plc, _, _ = make_plc()
        for _ in range(4):
            plc.tick()
        assert plc.stage_occupancy() == (True, True, True, True)

    def test_one_pixel_cycle_per_tick_steady_state(self):
        plc, _, _ = make_plc()
        total_ticks = 0
        while not plc.done:
            plc.tick()
            total_ticks += 1
            assert total_ticks < 1000
        # 4-stage fill + one retire per tick afterwards.
        assert total_ticks == pytest.approx(FMT.pixels + 4, abs=3)

    def test_multi_cycle_op_throttles_issue(self):
        fast, _, _ = make_plc(INTRA_COPY)
        slow, _, _ = make_plc(INTRA_GRAD)   # engine_cycles == 3
        for plc in (fast, slow):
            while not plc.done:
                plc.tick()
        assert slow.stats.cycles > fast.stats.cycles
        assert slow.stats.stall_op_busy > 0

    def test_loads_at_row_starts_shifts_elsewhere(self):
        plc, _, _ = make_plc(INTRA_GRAD)
        while not plc.done:
            plc.tick()
        assert plc.stats.loads == FMT.height
        assert plc.stats.shifts == FMT.pixels - FMT.height


class TestStalls:
    def test_missing_iim_lines_stall_stage2(self):
        plc, iim, _ = make_plc(INTRA_GRAD, preload_lines=1)
        for _ in range(20):
            plc.tick()
        # Row 0 of a 3x3 neighbourhood needs line 1: not resident yet.
        assert plc.stats.stall_iim_wait > 0
        assert plc.stats.retired_pixel_cycles == 0

    def test_stalled_stage2_resumes_when_line_arrives(self):
        plc, iim, _ = make_plc(INTRA_GRAD, preload_lines=1)
        for _ in range(10):
            plc.tick()
        frame = noise_frame(FMT, seed=55)
        lower, upper = frame.to_words()
        for y in (1, 2, 3):
            for x in range(FMT.width):
                iim.fifo(0).push_pixel(int(lower[y, x]), int(upper[y, x]))
        while not plc.done:
            plc.tick()
        assert plc.stats.retired_pixel_cycles == FMT.pixels

    def test_full_oim_backpressures(self):
        plc, _, oim = make_plc(INTRA_COPY, oim_lines=1)
        # OIM capacity = 6 pixels; nothing drains it here.
        for _ in range(60):
            if plc.done:
                break
            plc.tick()
        assert oim.full
        assert plc.stats.stall_oim_full > 0
        assert plc.stats.retired_pixel_cycles == oim.capacity_pixels

    def test_disable_holds_new_pixel_cycles(self):
        plc, _, _ = make_plc()
        plc.enabled = False
        for _ in range(5):
            plc.tick()
        assert plc.stats.issued_pixel_cycles == 0
        assert plc.stats.stall_disabled == 5
        plc.enabled = True
        plc.tick()
        assert plc.stats.issued_pixel_cycles == 1

    def test_disable_drains_in_flight_work(self):
        """Disabling stops *new* pixel-cycles; in-flight ones finish --
        'will not proceed with any more pixel-cycles'."""
        plc, _, _ = make_plc()
        for _ in range(3):
            plc.tick()
        issued = plc.stats.issued_pixel_cycles
        plc.enabled = False
        for _ in range(10):
            plc.tick()
        assert plc.stats.retired_pixel_cycles >= issued - 1
