"""Micro-instructions: stage/resource mapping, pixel-cycle bundles."""

from repro.core import Instruction, InstructionKind, bundle_for


class TestStageMapping:
    def test_kinds_map_to_their_stages(self):
        assert InstructionKind.SCAN.stage == 1
        assert InstructionKind.LOAD.stage == 2
        assert InstructionKind.SHIFT.stage == 2
        assert InstructionKind.OP.stage == 3
        assert InstructionKind.STORE.stage == 4

    def test_every_kind_claims_a_resource(self):
        resources = {kind: Instruction(kind, 0, (0, 0)).resource
                     for kind in InstructionKind}
        assert resources[InstructionKind.LOAD] == \
            resources[InstructionKind.SHIFT] == "iim_port"
        assert resources[InstructionKind.OP] == "alu"
        # Distinct stages use distinct resources (stage 2 shares one).
        assert len(set(resources.values())) == 4


class TestBundles:
    def test_bundle_has_one_instruction_per_stage(self):
        """'In order to generate a result pixel one instruction has to be
        performed in each one of the stages.'"""
        bundle = bundle_for(3, (5, 2), row_start=False)
        assert [ins.stage for ins in bundle] == [1, 2, 3, 4]
        assert all(ins.pixel_cycle == 3 for ins in bundle)
        assert all(ins.position == (5, 2) for ins in bundle)

    def test_row_start_uses_load(self):
        bundle = bundle_for(0, (0, 1), row_start=True)
        assert bundle[1].kind is InstructionKind.LOAD

    def test_mid_row_uses_shift(self):
        bundle = bundle_for(1, (1, 1), row_start=False)
        assert bundle[1].kind is InstructionKind.SHIFT

    def test_str_is_informative(self):
        text = str(Instruction(InstructionKind.OP, 7, (3, 4)))
        assert "OP" in text and "7" in text and "(3,4)" in text
