"""The OIM: the result-side rate-decoupling FIFO."""

import pytest

from repro.core import OIM_LINES, OutputIntermediateMemory


class TestOim:
    def test_fifo_order(self):
        oim = OutputIntermediateMemory(width=4, capacity_lines=2)
        oim.push(0, 10, 20)
        oim.push(1, 30, 40)
        assert oim.front() == (0, 10, 20)
        assert oim.pop() == (0, 10, 20)
        assert oim.pop() == (1, 30, 40)

    def test_capacity_in_pixels(self):
        oim = OutputIntermediateMemory(width=4, capacity_lines=2)
        assert oim.capacity_pixels == 8
        for i in range(8):
            oim.push(i, 0, 0)
        assert oim.full

    def test_overflow_raises(self):
        oim = OutputIntermediateMemory(width=1, capacity_lines=1)
        oim.push(0, 0, 0)
        with pytest.raises(RuntimeError):
            oim.push(1, 0, 0)

    def test_underflow_raises(self):
        oim = OutputIntermediateMemory(width=1, capacity_lines=1)
        with pytest.raises(RuntimeError):
            oim.pop()
        with pytest.raises(RuntimeError):
            oim.front()

    def test_empty_full_signals(self):
        oim = OutputIntermediateMemory(width=2, capacity_lines=1)
        assert oim.empty and not oim.full
        oim.push(0, 1, 2)
        assert not oim.empty
        oim.push(1, 3, 4)
        assert oim.full
        oim.pop()
        assert not oim.full

    def test_peak_occupancy_tracked(self):
        oim = OutputIntermediateMemory(width=4, capacity_lines=1)
        oim.push(0, 0, 0)
        oim.push(1, 0, 0)
        oim.pop()
        oim.push(2, 0, 0)
        assert oim.peak_occupancy == 2

    def test_words_masked(self):
        oim = OutputIntermediateMemory(width=1, capacity_lines=1)
        oim.push(0, 0x1_0000_0001, 0x2_0000_0002)
        assert oim.pop() == (0, 1, 2)

    def test_mirrors_iim_structure(self):
        """'The OIM has exactly the same structure as the IIM': 16 lines,
        two banks per line."""
        oim = OutputIntermediateMemory(width=8, capacity_lines=OIM_LINES)
        assert oim.memory_blocks == 32

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            OutputIntermediateMemory(width=0, capacity_lines=1)
        with pytest.raises(ValueError):
            OutputIntermediateMemory(width=1, capacity_lines=0)

    def test_reset(self):
        oim = OutputIntermediateMemory(width=2, capacity_lines=1)
        oim.push(0, 1, 1)
        oim.reset()
        assert oim.empty and oim.peak_occupancy == 0
