"""Engine call configuration: the v1 hardware envelope."""

import pytest

from repro.addresslib import (AddressingMode, COLUMN_9, INTER_ABSDIFF,
                              INTRA_COPY, INTRA_GRAD, Neighbourhood,
                              ScanOrder, fir_op)
from repro.core import (EngineConfig, EngineConfigError, IIM_LINES,
                        IIM_LINES_PER_IMAGE_INTER, inter_config,
                        intra_config)
from repro.image import CIF, QCIF


class TestValidConfigs:
    def test_intra_defaults(self):
        config = intra_config(INTRA_GRAD, CIF)
        assert config.mode is AddressingMode.INTRA
        assert config.images_in == 1
        assert config.produces_image
        assert config.iim_lines_per_image == IIM_LINES

    def test_inter_defaults(self):
        config = inter_config(INTER_ABSDIFF, QCIF)
        assert config.images_in == 2
        assert config.iim_lines_per_image == IIM_LINES_PER_IMAGE_INTER

    def test_reduce_produces_no_image(self):
        config = inter_config(INTER_ABSDIFF, CIF, reduce_to_scalar=True)
        assert not config.produces_image

    def test_nine_line_neighbourhood_accepted(self):
        op = fir_op("col9", COLUMN_9, [1] * 9, shift=3)
        intra_config(op, CIF)  # must not raise


class TestRejectedConfigs:
    def test_segment_mode_rejected(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(mode=AddressingMode.SEGMENT, op=INTRA_COPY,
                         fmt=CIF)

    def test_mode_op_mismatch(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(mode=AddressingMode.INTER, op=INTRA_COPY, fmt=CIF)
        with pytest.raises(EngineConfigError):
            EngineConfig(mode=AddressingMode.INTRA, op=INTER_ABSDIFF,
                         fmt=CIF)

    def test_vertical_scan_rejected_by_v1(self):
        with pytest.raises(EngineConfigError):
            intra_config(INTRA_GRAD, CIF, scan=ScanOrder.VERTICAL)

    def test_intra_cannot_require_full_frames(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(mode=AddressingMode.INTRA, op=INTRA_GRAD,
                         fmt=CIF, requires_full_frames=True)

    def test_intra_cannot_reduce(self):
        with pytest.raises(EngineConfigError):
            EngineConfig(mode=AddressingMode.INTRA, op=INTRA_GRAD,
                         fmt=CIF, reduce_to_scalar=True)

    def test_op_name_passthrough(self):
        assert intra_config(INTRA_GRAD, CIF).op_name == "intra_grad"
