"""Golden-output tests: one per rule class, asserting rule id,
severity and message content."""

from __future__ import annotations

import pytest

from repro.addresslib import (AddressingMode, COLUMN_9, CON_8, ChannelSet,
                              INTER_ABSDIFF, INTRA_BOX3, INTRA_GRAD,
                              INTRA_MEDIAN3, erode_op)
from repro.addresslib.program import CallProgram, ProgramStep
from repro.analysis import (EngineParams, ProgramCheckError, RULES,
                            Severity, analyze_config, analyze_program,
                            check_program, predict_fast_path)
from repro.core.config import inter_config, intra_config
from repro.image import ImageFormat

FMT2 = ImageFormat("T32", 32, 32)          # two strips, tiny
BIG = ImageFormat("4CIF", 704, 576)        # overflows a result bank
ONESTRIP = ImageFormat("T16", 16, 16)      # single strip


def _step(index=0, mode=AddressingMode.INTRA, op=INTRA_BOX3, fmt=FMT2,
          inputs=("in0",), output="t0", **kwargs):
    return ProgramStep(index=index, mode=mode, op=op, fmt=fmt,
                       channels=ChannelSet.Y, inputs=inputs,
                       output=output, **kwargs)


def _program(*steps, inputs=("in0",), results=()):
    return CallProgram(name="hand", fmt=steps[0].fmt, inputs=inputs,
                       steps=tuple(steps), results=tuple(results))


class TestCatalogue:
    def test_every_rule_has_stable_fields(self):
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule.layer in ("configuration", "capacity", "hazard",
                                  "liveness", "fast-path", "scheduling",
                                  "service", "transport", "residency",
                                  "pool")
            assert rule.title

    def test_diagnostic_format_line(self):
        report = analyze_config(intra_config(INTRA_BOX3, BIG))
        line = report.errors[0].format()
        assert line.startswith("error CAP001")
        assert "result bank" in line


class TestConfigurationRules:
    def test_cfg001_wrong_op_kind(self):
        step = _step(mode=AddressingMode.INTER, op=INTRA_BOX3,
                     inputs=("in0", "in1"))
        report = analyze_program(
            _program(step, inputs=("in0", "in1"), results=("t0",)))
        (diag,) = report.by_rule("CFG001")
        assert diag.severity is Severity.ERROR
        assert "InterOp" in diag.message


class TestCapacityRules:
    def test_cap001_result_bank_overflow(self):
        report = analyze_config(intra_config(INTRA_BOX3, BIG))
        (diag,) = report.by_rule("CAP001")
        assert diag.severity is Severity.ERROR
        assert "4CIF" in diag.message and "131072" in diag.message
        assert not report.ok

    def test_cap001_scalar_reduce_is_exempt(self):
        config = inter_config(INTER_ABSDIFF, BIG, reduce_to_scalar=True)
        assert not analyze_config(config).by_rule("CAP001")

    def test_cap002_inter_input_overflow(self):
        report = analyze_config(
            inter_config(INTER_ABSDIFF, BIG, reduce_to_scalar=True))
        (diag,) = report.by_rule("CAP002")
        assert "input" in diag.message

    def test_cap003_iim_ablation(self):
        config = intra_config(erode_op(COLUMN_9), FMT2)
        params = EngineParams(iim_lines=4)
        (diag,) = analyze_config(config, params).by_rule("CAP003")
        assert "9 lines" in diag.message
        assert not analyze_config(config).by_rule("CAP003")

    def test_cap005_partial_strip_info(self):
        fmt = ImageFormat("T16x33", 16, 33)
        (diag,) = analyze_config(
            intra_config(INTRA_BOX3, fmt)).by_rule("CAP005")
        assert diag.severity is Severity.INFO

    def test_clean_config_is_clean(self):
        report = analyze_config(intra_config(INTRA_BOX3, FMT2))
        assert report.ok and not report.warnings


class TestHazardRules:
    def test_haz001_ghost_read(self):
        step = _step(inputs=("ghost",))
        (diag,) = analyze_program(_program(step)).by_rule("HAZ001")
        assert "'ghost'" in diag.message

    def test_haz002_in_place(self):
        step = _step(inputs=("in0",), output="in0")
        report = analyze_program(_program(step, results=("in0",)))
        (diag,) = report.by_rule("HAZ002")
        assert "in place" in diag.message

    def test_haz003_residency_without_previous_call(self):
        step = _step(resident=(True,))
        (diag,) = analyze_program(
            _program(step, results=("t0",))).by_rule("HAZ003")
        assert "residency" in diag.message

    def test_haz003_layout_change_invalidates_claim(self):
        first = _step(index=0, mode=AddressingMode.INTER,
                      op=INTER_ABSDIFF, inputs=("in0", "in1"),
                      output="t0")
        second = _step(index=1, inputs=("in0",), output="t1",
                       resident=(True,))
        report = analyze_program(_program(
            first, second, inputs=("in0", "in1"), results=("t1",)))
        (diag,) = report.by_rule("HAZ003")
        assert "block_A/block_B" in diag.message

    def test_haz003_same_slot_claim_is_valid(self):
        first = _step(index=0, inputs=("in0",), output="t0")
        second = _step(index=1, inputs=("in0",), output="t1",
                       resident=(True,))
        report = analyze_program(
            _program(first, second, results=("t0", "t1")))
        assert not report.by_rule("HAZ003")

    def test_haz003_previous_result_claim_is_valid(self):
        first = _step(index=0, inputs=("in0",), output="t0")
        second = _step(index=1, inputs=("t0",), output="t1",
                       resident=(True,))
        report = analyze_program(
            _program(first, second, results=("t1",)))
        assert not report.by_rule("HAZ003")

    def test_haz004_duplicate_inter_inputs(self):
        step = _step(mode=AddressingMode.INTER, op=INTER_ABSDIFF,
                     inputs=("in0", "in0"))
        (diag,) = analyze_program(
            _program(step, results=("t0",))).by_rule("HAZ004")
        assert diag.severity is Severity.WARNING

    def test_haz005_dead_store(self):
        step = _step()
        (diag,) = analyze_program(_program(step)).by_rule("HAZ005")
        assert "dead" in diag.message

    def test_haz006_format_mismatch(self):
        first = _step(index=0)
        second = _step(index=1, fmt=ONESTRIP, inputs=("t0",),
                       output="t1")
        report = analyze_program(
            _program(first, second, results=("t1",)))
        (diag,) = report.by_rule("HAZ006")
        assert "T32" in diag.message and "T16" in diag.message


class TestLivenessRules:
    def test_liv001_bound_below_floor(self):
        fmt = ImageFormat("P24x48", 24, 48)
        config = inter_config(INTER_ABSDIFF, fmt)
        report = analyze_config(config, EngineParams(max_cycles=500))
        (diag,) = report.by_rule("LIV001")
        assert "guaranteed EngineDeadlock" in diag.message

    def test_liv002_zero_plc_rate(self):
        report = analyze_config(intra_config(INTRA_BOX3, FMT2),
                                EngineParams(plc_ticks_per_cycle=0))
        assert report.by_rule("LIV002")

    def test_liv003_zero_txu_rate(self):
        report = analyze_config(intra_config(INTRA_BOX3, FMT2),
                                EngineParams(input_txu_ticks_per_cycle=0))
        assert report.by_rule("LIV003")

    def test_liv004_risky_bound_warns(self):
        config = intra_config(INTRA_BOX3, FMT2)
        report = analyze_config(config, EngineParams(max_cycles=50_000))
        (diag,) = report.by_rule("LIV004")
        assert diag.severity is Severity.WARNING
        assert report.ok

    def test_generous_bound_is_silent(self):
        config = intra_config(INTRA_BOX3, FMT2)
        report = analyze_config(config,
                                EngineParams(max_cycles=10_000_000))
        assert not report.by_rule("LIV001")
        assert not report.by_rule("LIV004")


class TestFastPathRules:
    def test_fpa001_op_latency(self):
        (diag,) = analyze_config(
            intra_config(INTRA_GRAD, FMT2)).by_rule("FPA001")
        assert diag.severity is Severity.INFO
        assert "latency 3" in diag.message

    def test_fpa002_single_strip(self):
        (diag,) = analyze_config(
            intra_config(INTRA_BOX3, ONESTRIP)).by_rule("FPA002")
        assert "strip" in diag.message

    def test_fpa003_tick_rates(self):
        report = analyze_config(intra_config(INTRA_BOX3, FMT2),
                                EngineParams(plc_ticks_per_cycle=1))
        assert report.by_rule("FPA003")

    def test_fpa004_disabled_engine(self):
        report = analyze_config(intra_config(INTRA_BOX3, FMT2),
                                EngineParams(fast_path=False))
        assert report.by_rule("FPA004")

    def test_prediction_object(self):
        assert predict_fast_path(intra_config(INTRA_BOX3, FMT2)).eligible
        prediction = predict_fast_path(intra_config(INTRA_MEDIAN3, FMT2))
        assert not prediction.eligible
        assert prediction.reasons == ("op_latency",)


class TestCheckProgram:
    def test_check_raises_with_report(self):
        config = intra_config(INTRA_BOX3, BIG)
        with pytest.raises(ProgramCheckError) as excinfo:
            check_program(config)
        assert excinfo.value.report.by_rule("CAP001")
        assert "CAP001" in str(excinfo.value)

    def test_check_passes_clean(self):
        report = check_program(intra_config(INTRA_BOX3, FMT2))
        assert report.ok
