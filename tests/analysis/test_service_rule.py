"""SVC001/SVC002: deadline budgets and placement hints, statically."""

import pytest

from repro.addresslib import (AddressLib, INTER_ADD, INTRA_BOX3,
                              INTRA_GRAD, INTRA_MEDIAN3, INTRA_SOBEL_X,
                              INTRA_SOBEL_Y, trace_program)
from repro.analysis import (EngineParams, analyze_program,
                            critical_path_cycles, step_cycles)
from repro.analysis.cli import SELFTEST_CASES
from repro.image import QCIF, Frame


def _chain_program():
    def body(lib: AddressLib, frame: Frame) -> Frame:
        edges = lib.intra(INTRA_GRAD, frame)
        smooth = lib.intra(INTRA_BOX3, edges)
        return lib.intra(INTRA_MEDIAN3, smooth)
    return trace_program("chain", body, Frame(QCIF))


def _diamond_program():
    def body(lib: AddressLib, frame: Frame) -> Frame:
        gx = lib.intra(INTRA_SOBEL_X, frame)
        gy = lib.intra(INTRA_SOBEL_Y, frame)
        return lib.inter(INTER_ADD, gx, gy)
    return trace_program("diamond", body, Frame(QCIF))


class TestCriticalPath:
    def test_serial_chain_sums_every_step(self):
        program = _chain_program()
        assert critical_path_cycles(program) == sum(
            step_cycles(step) for step in program.steps)

    def test_independent_steps_never_add(self):
        program = _diamond_program()
        gx, gy, add = program.steps
        assert critical_path_cycles(program) == (
            max(step_cycles(gx), step_cycles(gy)) + step_cycles(add))

    def test_single_step_is_its_own_floor(self):
        def body(lib: AddressLib, frame: Frame) -> Frame:
            return lib.intra(INTRA_GRAD, frame)
        program = trace_program("single", body, Frame(QCIF))
        assert critical_path_cycles(program) == step_cycles(
            program.steps[0])


class TestDeadlineRule:
    def test_fires_when_budget_unmeetable(self):
        report = analyze_program(
            _chain_program(), EngineParams(deadline_cycles=10_000))
        hits = report.by_rule("SVC001")
        assert len(hits) == 1
        assert "critical-path" in hits[0].message
        assert report.ok  # informational only

    def test_silent_when_budget_fits(self):
        program = _chain_program()
        budget = critical_path_cycles(program)
        report = analyze_program(program,
                                 EngineParams(deadline_cycles=budget))
        assert not report.by_rule("SVC001")

    def test_inert_without_a_budget(self):
        report = analyze_program(_chain_program(), EngineParams())
        assert not report.by_rule("SVC001")

    def test_parallel_program_judged_by_path_not_sum(self):
        # A budget between the critical path and the serial sum: SVC001
        # must stay quiet, because unlimited engines could meet it.
        program = _diamond_program()
        path = critical_path_cycles(program)
        total = sum(step_cycles(step) for step in program.steps)
        assert path < total
        report = analyze_program(program,
                                 EngineParams(deadline_cycles=path))
        assert not report.by_rule("SVC001")
        report = analyze_program(program,
                                 EngineParams(deadline_cycles=path - 1))
        assert report.by_rule("SVC001")

    def test_selftest_covers_service_class(self):
        builder, rule_id = SELFTEST_CASES["service"]
        assert rule_id == "SVC001"
        program, params = builder()
        report = analyze_program(program, params)
        assert report.by_rule("SVC001")


class TestPlacementRule:
    def test_split_producer_consumer_pair_is_flagged(self):
        report = analyze_program(
            _chain_program(),
            EngineParams(placement_hints=(0, 1, None)))
        hits = report.by_rule("SVC002")
        assert len(hits) == 1
        assert "board 0" in hits[0].message
        assert "board 1" in hits[0].message
        assert hits[0].step_index == 1

    def test_co_located_pair_is_quiet(self):
        report = analyze_program(
            _chain_program(),
            EngineParams(placement_hints=(0, 0, 0)))
        assert not report.by_rule("SVC002")

    def test_unhinted_steps_are_quiet(self):
        report = analyze_program(
            _chain_program(),
            EngineParams(placement_hints=(0, None, 1)))
        assert not report.by_rule("SVC002")

    def test_inert_without_hints(self):
        report = analyze_program(_chain_program(), EngineParams())
        assert not report.by_rule("SVC002")

    def test_every_split_edge_is_reported(self):
        # Diamond: gx and gy both feed the add; pin the add away from
        # both producers and both hand-offs must be flagged.
        report = analyze_program(
            _diamond_program(),
            EngineParams(placement_hints=(0, 1, 2)))
        assert len(report.by_rule("SVC002")) == 2

    def test_hint_count_mismatch_is_an_error(self):
        with pytest.raises(ValueError):
            analyze_program(_chain_program(),
                            EngineParams(placement_hints=(0, 1)))

    def test_selftest_covers_placement_class(self):
        builder, rule_id = SELFTEST_CASES["placement"]
        assert rule_id == "SVC002"
        program, params = builder()
        report = analyze_program(program, params)
        assert report.by_rule("SVC002")
