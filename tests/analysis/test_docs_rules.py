"""docs/ANALYSIS.md's rule tables cannot drift from the catalogue.

The doc's markdown tables are the human-facing mirror of
``repro-check --list-rules`` (both derive from
``repro.analysis.rules.RULES``).  This test parses every table row of
the doc and holds the rule-id set *exactly* equal to the catalogue --
a rule added without documentation, or a stale documented id, fails
here rather than rotting silently.
"""

import re
from pathlib import Path

from repro.analysis.cli import main as repro_check_main
from repro.analysis.rules import RULES

DOC = Path(__file__).resolve().parents[2] / "docs" / "ANALYSIS.md"

#: ``| CAP001 | error | ... |`` -> the id cell of a rule-table row.
_ROW = re.compile(r"^\|\s*([A-Z]{3,4}\d{3})\s*\|\s*(\w+)\s*\|",
                  re.MULTILINE)


def _documented_rules():
    return {match.group(1): match.group(2)
            for match in _ROW.finditer(DOC.read_text(encoding="utf-8"))}


def test_doc_rule_ids_match_catalogue_exactly():
    documented = _documented_rules()
    assert set(documented) == set(RULES), (
        f"docs/ANALYSIS.md drifted: missing "
        f"{sorted(set(RULES) - set(documented))}, stale "
        f"{sorted(set(documented) - set(RULES))}")


def test_doc_severities_match_catalogue():
    for rule_id, severity in _documented_rules().items():
        assert severity == RULES[rule_id].severity.name.lower(), (
            f"{rule_id} documented as {severity!r} but the catalogue "
            f"says {RULES[rule_id].severity.name.lower()!r}")


def test_doc_matches_list_rules_output(capsys):
    assert repro_check_main(["--list-rules"]) == 0
    listed = {line.split()[0]
              for line in capsys.readouterr().out.splitlines() if line}
    assert listed == set(_documented_rules())
