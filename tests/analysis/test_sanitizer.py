"""The runtime transport sanitizer: seeded bugs caught, clean runs clean.

Three contracts:

* every ``SANITIZE_SELFTESTS`` scenario (one real seeded bug per
  SHM/RES/POOL rule, against the *live* shared-memory primitives) is
  caught -- or skipped where the platform has no shared memory;
* a sanitizer-armed scheduler run over the 0xFA57 corpus recipe stays
  bit-exact against the serial executor and emits zero error-severity
  findings (observation never perturbs results);
* the arming surfaces agree: ``REPRO_SANITIZE``, the scheduler's
  ``sanitize=`` keyword, and ``SubmitOptions(sanitize=...)`` all
  normalise through the same domain vocabulary.
"""

import random

import pytest

from repro.addresslib import (AddressLib, BatchCall, INTER_OPS,
                              INTRA_OPS, SoftwareBackend, VectorExecutor)
from repro.analysis.sanitize import (SANITIZE_SELFTESTS,
                                     active_sanitizer, ensure_sanitizer,
                                     install_sanitizer, normalize_domains,
                                     uninstall_sanitizer)
from repro.api import SubmitOptions
from repro.host import CallScheduler, shm
from repro.image import ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)


@pytest.fixture(autouse=True)
def _clean_global_sanitizer():
    """No test leaks an armed sanitizer into the rest of the suite."""
    uninstall_sanitizer()
    shm.set_transport_observer(None)
    yield
    uninstall_sanitizer()
    shm.set_transport_observer(None)


def _random_batch_call(rng):
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call):
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _assert_same(got, want):
    if isinstance(want, int):
        assert got == want
    else:
        assert got.equals(want)


class TestSeededBugsCaught:
    @pytest.mark.parametrize("description", sorted(SANITIZE_SELFTESTS))
    def test_selftest_caught(self, description):
        scenario, rule_id = SANITIZE_SELFTESTS[description]
        findings = scenario()
        if findings is None:
            pytest.skip("shared memory unavailable on this platform")
        assert any(d.rule_id == rule_id for d in findings), \
            f"{rule_id} ({description}) no longer observed at runtime"

    def test_one_scenario_per_new_rule(self):
        covered = {rule_id for _, rule_id in SANITIZE_SELFTESTS.values()}
        assert covered == {"SHM001", "SHM002", "SHM003", "RES001",
                           "RES002", "POOL001", "POOL002"}


class TestDriverResidencyShim:
    def test_release_then_reship_flags_res002(self):
        from repro.addresslib import INTER_ABSDIFF, INTRA_GRAD
        from repro.host.backend import EngineBackend

        fmt = ImageFormat("T32", 32, 32)
        frame = noise_frame(fmt, seed=1)
        backend = EngineBackend(chain_frames=True)
        lib = AddressLib(backend)
        sanitizer = install_sanitizer(("residency",))
        edges = lib.intra(INTRA_GRAD, frame)
        backend.residency.release(frame)
        lib.inter(INTER_ABSDIFF, frame, edges)
        assert any(d.rule_id == "RES002"
                   for d in sanitizer.drain())

    def test_healthy_chain_stays_clean(self):
        from repro.addresslib import INTER_ABSDIFF, INTRA_GRAD
        from repro.host.backend import EngineBackend

        fmt = ImageFormat("T32", 32, 32)
        frame = noise_frame(fmt, seed=1)
        lib = AddressLib(EngineBackend(chain_frames=True))
        sanitizer = install_sanitizer(("residency",))
        edges = lib.intra(INTRA_GRAD, frame)
        lib.inter(INTER_ABSDIFF, frame, edges)
        assert sanitizer.drain() == []


class TestSanitizedCorpusClean:
    def test_bit_exact_with_zero_error_findings(self):
        rng = random.Random(0xFA57)
        calls = [_random_batch_call(rng) for _ in range(26)]
        with CallScheduler(max_workers=2,
                           sanitize=("all",)) as scheduler:
            assert scheduler.sanitize_domains == ("pool", "residency",
                                                  "transport")
            lib = AddressLib(SoftwareBackend())
            results = lib.run_batch(calls, scheduler=scheduler)
            for call, got in zip(calls, results):
                _assert_same(got, _serial_reference(call))
            errors = [d for d in scheduler.sanitizer_findings
                      if d.severity.name == "ERROR"]
            assert errors == []

    def test_unsanitized_scheduler_stays_dormant(self):
        with CallScheduler(max_workers=1) as scheduler:
            assert scheduler.sanitize_domains == ()
        assert active_sanitizer() is None


class TestArmingSurfaces:
    def test_env_var_pickup(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "transport, residency")
        with CallScheduler(max_workers=1) as scheduler:
            assert scheduler.sanitize_domains == ("residency",
                                                  "transport")
        assert active_sanitizer() is not None

    def test_explicit_kwarg_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "pool")
        with CallScheduler(max_workers=1,
                           sanitize=("transport",)) as scheduler:
            assert scheduler.sanitize_domains == ("transport",)

    def test_submit_options_normalises(self):
        options = SubmitOptions(sanitize=("all",))
        assert options.sanitize == ("pool", "residency", "transport")
        assert SubmitOptions().sanitize is None

    def test_submit_options_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            SubmitOptions(sanitize=("bogus",))

    def test_normalize_domains(self):
        assert normalize_domains(["residency", "transport",
                                  "residency"]) \
            == ("residency", "transport")
        assert normalize_domains(["all"]) == ("pool", "residency",
                                              "transport")
        with pytest.raises(ValueError):
            normalize_domains(["shm"])

    def test_ensure_widens_active_domains(self):
        install_sanitizer(("transport",))
        ensure_sanitizer(("residency",))
        sanitizer = active_sanitizer()
        assert sanitizer is not None
        assert set(sanitizer.domains) >= {"residency", "transport"}
