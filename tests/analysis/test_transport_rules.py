"""The wave-plan verifier: SHM/RES/POOL families over the dataflow IR.

Each rule gets three postures: the seeded-broken deployment from
``repro-check --selftest`` must fire it, the *nearest legal*
deployment (one knob away) must stay silent on it, and the example
programs must stay completely clean under healthy affinity
deployments at every pool size.  Mirrors the per-rule golden-output
contract ``tests/analysis/test_diagnostics.py`` holds for the
program-structure families.
"""

import pytest

from repro.analysis import (Severity, TransportParams, analyze_waves,
                            lower_program)
from repro.analysis.cli import (EXAMPLE_PROGRAMS, WAVE_SELFTEST_CASES,
                                _reuse_program, _rewrite_program,
                                _wave_serial_chain)
from repro.addresslib import dependency_levels


def _rule_ids(program, transport):
    report = analyze_waves(program, transport)
    return {d.rule_id for d in report.diagnostics}


class TestSeededDeployments:
    """Every SHM/RES/POOL rule fires under its seeded deployment."""

    @pytest.mark.parametrize("rule_id", sorted(WAVE_SELFTEST_CASES))
    def test_rule_fires(self, rule_id):
        builder, transport = WAVE_SELFTEST_CASES[rule_id]
        report = analyze_waves(builder(), transport)
        hits = report.by_rule(rule_id)
        assert hits, f"{rule_id} no longer detected"
        for diagnostic in hits:
            assert diagnostic.severity is not Severity.INFO

    def test_covers_all_transport_families(self):
        families = {rule_id[:3] for rule_id in WAVE_SELFTEST_CASES}
        assert families == {"SHM", "RES", "POO"}
        assert len(WAVE_SELFTEST_CASES) >= 6


#: rule -> (program builder, the nearest *legal* deployment).
NEAREST_LEGAL = {
    "SHM001": (_rewrite_program,
               TransportParams(boards=2, fail_wave=1, requeue="replay")),
    "SHM002": (_wave_serial_chain, TransportParams()),
    "SHM003": (_wave_serial_chain,
               TransportParams(boards=2, fail_wave=1,
                               fail_phase="before_compute",
                               requeue="replay")),
    "RES001": (_rewrite_program,
               TransportParams(boards=2, placement="round_robin")),
    "RES002": (_reuse_program, TransportParams(cache_capacity=2)),
    "POOL001": (_rewrite_program,
                TransportParams(boards=2, fail_wave=0,
                                requeue="replay")),
    "POOL002": (_wave_serial_chain, TransportParams(boards=2)),
}


class TestNearestLegal:
    """One knob back toward health silences the rule."""

    @pytest.mark.parametrize("rule_id", sorted(NEAREST_LEGAL))
    def test_rule_silent(self, rule_id):
        builder, transport = NEAREST_LEGAL[rule_id]
        assert rule_id not in _rule_ids(builder(), transport)

    def test_nearest_legal_mirrors_selftest_cases(self):
        assert set(NEAREST_LEGAL) == set(WAVE_SELFTEST_CASES)


class TestHealthyDeploymentsClean:
    """Examples produce zero wave findings under affinity placement."""

    @pytest.mark.parametrize("boards", [1, 2, 3, 4])
    @pytest.mark.parametrize("name", sorted(EXAMPLE_PROGRAMS))
    def test_example_clean(self, name, boards):
        program = EXAMPLE_PROGRAMS[name]()
        report = analyze_waves(program, TransportParams(boards=boards))
        assert not report.diagnostics, report.format()

    def test_default_params_are_healthy(self):
        # analyze_waves with no transport means the single-board
        # defaults -- the posture CI's --waves gate runs.
        for name in EXAMPLE_PROGRAMS:
            report = analyze_waves(EXAMPLE_PROGRAMS[name]())
            assert report.ok and not report.warnings


class TestLowering:
    def test_waves_match_dependency_levels(self):
        program = _rewrite_program()
        plan = lower_program(program, TransportParams(boards=2))
        assert [list(wave) for wave in plan.waves] \
            == dependency_levels(program)

    def test_analyze_waves_accepts_prelowered_plan(self):
        builder, transport = WAVE_SELFTEST_CASES["SHM002"]
        program = builder()
        plan = lower_program(program, transport)
        report = analyze_waves(program, plan=plan)
        assert report.by_rule("SHM002")

    def test_fail_wave_requires_survivor(self):
        with pytest.raises(ValueError):
            TransportParams(fail_wave=0)

    def test_report_name_marks_wave_pass(self):
        report = analyze_waves(_wave_serial_chain())
        assert report.program_name.endswith("[waves]")
