"""Tracing compositions through the recording backend."""

from __future__ import annotations

import pytest

from repro.addresslib import (AddressingMode, INTER_ABSDIFF, INTRA_BOX3,
                              MotionMaskSettings, motion_mask, opening,
                              top_hat, unsharp_mask)
from repro.addresslib.program import (CallProgram, ProgramRecorder,
                                      trace_program)
from repro.analysis import analyze_program
from repro.core.config import inter_config, intra_config
from repro.image import ImageFormat
from repro.image.frame import Frame

FMT = ImageFormat("T32", 32, 32)


class TestTraceProgram:
    def test_motion_mask_trace_shape(self):
        program = trace_program("motion_mask", motion_mask, Frame(FMT),
                                Frame(FMT))
        assert program.inputs == ("in0", "in1")
        assert len(program.steps) == 5       # diff, box, thr, erode, dilate
        assert program.steps[0].mode is AddressingMode.INTER
        assert all(s.mode is AddressingMode.INTRA
                   for s in program.steps[1:])
        assert program.results == (program.steps[-1].output,)

    def test_dataflow_links_through_temporaries(self):
        program = trace_program("opening", opening, Frame(FMT))
        first, second = program.steps
        assert first.inputs == ("in0",)
        assert second.inputs == (first.output,)

    def test_source_locations_point_at_compositions(self):
        program = trace_program("top_hat", top_hat, Frame(FMT))
        for step in program.steps:
            assert step.location is not None
            assert step.location.filename.endswith("compositions.py")

    def test_settings_kwargs_forwarded(self):
        program = trace_program(
            "mm", motion_mask, Frame(FMT), Frame(FMT),
            settings=MotionMaskSettings(threshold=10, despeckle=None))
        assert len(program.steps) == 3       # no despeckle pair

    def test_traced_compositions_analyze_clean(self):
        for name, fn, arity in [("opening", opening, 1),
                                ("top_hat", top_hat, 1),
                                ("unsharp_mask", unsharp_mask, 1),
                                ("motion_mask", motion_mask, 2)]:
            frames = [Frame(FMT) for _ in range(arity)]
            report = analyze_program(trace_program(name, fn, *frames))
            assert report.ok, report.format()
            assert not report.warnings, report.format()

    def test_scalar_reduce_step_has_no_output(self):
        def body(lib, a, b):
            lib.inter_reduce(INTER_ABSDIFF, a, b)
        program = trace_program("sad", body, Frame(FMT), Frame(FMT))
        (step,) = program.steps
        assert step.output is None and step.reduce_to_scalar
        assert program.results == ()


class TestProgramRecorder:
    def test_rejects_mismatched_names(self):
        with pytest.raises(ValueError):
            ProgramRecorder([Frame(FMT)], input_names=("a", "b"))

    def test_empty_trace_rejected(self):
        recorder = ProgramRecorder([Frame(FMT)])
        with pytest.raises(ValueError):
            recorder.program("empty")

    def test_external_frame_becomes_input(self):
        recorder = ProgramRecorder([Frame(FMT)])
        from repro.addresslib import AddressLib
        lib = AddressLib(backend=recorder)
        stray = Frame(FMT)               # never registered as an input
        lib.inter(INTER_ABSDIFF, stray, Frame(FMT))
        program = recorder.program("stray")
        assert program.steps[0].inputs[0].startswith("ext")


class TestSingleCallPrograms:
    def test_single_wraps_intra(self):
        program = CallProgram.single(intra_config(INTRA_BOX3, FMT))
        (step,) = program.steps
        assert step.inputs == ("in0",)
        assert program.results == ("out",)

    def test_single_wraps_scalar_reduce(self):
        config = inter_config(INTER_ABSDIFF, FMT, reduce_to_scalar=True)
        program = CallProgram.single(config)
        assert program.inputs == ("in0", "in1")
        assert program.results == ()

    def test_step_describe_is_readable(self):
        program = CallProgram.single(intra_config(INTRA_BOX3, FMT))
        assert "intra intra_box3(in0) -> out" in program.steps[0].describe
