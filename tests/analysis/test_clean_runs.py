"""The analyzer's soundness contract, property-tested.

A program AddressCheck passes as clean must run on the cycle-level
engine without :class:`EngineDeadlock`; a program it flags with a
liveness *error* must deadlock.  Hypothesis sweeps small geometries and
the full op tables on both sides of the boundary.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addresslib import INTER_OPS, INTRA_OPS
from repro.analysis import (EngineDeadlock, EngineParams, analyze_config,
                            predict_fast_path)
from repro.core import AddressEngine, inter_config, intra_config
from repro.core.constraints import min_call_cycles
from repro.image import ImageFormat, noise_frame

ENGINE = AddressEngine()

geometries = st.tuples(st.integers(4, 24), st.sampled_from([4, 8, 16, 32]))
intra_ops = st.sampled_from(sorted(INTRA_OPS.values(),
                                   key=lambda op: op.name))
inter_ops = st.sampled_from(sorted(INTER_OPS.values(),
                                   key=lambda op: op.name))


def fmt_of(geometry):
    width, height = geometry
    return ImageFormat(f"P{width}x{height}", width, height)


class TestCleanMeansRunnable:
    @given(geometry=geometries, op=intra_ops, seed=st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_clean_intra_never_deadlocks(self, geometry, op, seed):
        fmt = fmt_of(geometry)
        config = intra_config(op, fmt)
        report = analyze_config(config)
        assert report.ok, report.format()
        run = ENGINE.run_call(config, noise_frame(fmt, seed=seed))
        assert run.completion_cycle > 0

    @given(geometry=geometries, op=inter_ops, seed=st.integers(0, 999),
           reduce_to_scalar=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_clean_inter_never_deadlocks(self, geometry, op, seed,
                                         reduce_to_scalar):
        fmt = fmt_of(geometry)
        config = inter_config(op, fmt, reduce_to_scalar=reduce_to_scalar)
        report = analyze_config(config)
        assert report.ok, report.format()
        run = ENGINE.run_call(config, noise_frame(fmt, seed=seed),
                              noise_frame(fmt, seed=seed + 1))
        assert run.completion_cycle > 0

    @given(geometry=geometries, op=intra_ops, seed=st.integers(0, 999))
    @settings(max_examples=15, deadline=None)
    def test_prediction_matches_engine_dispatch(self, geometry, op, seed):
        fmt = fmt_of(geometry)
        config = intra_config(op, fmt)
        run = ENGINE.run_call(config, noise_frame(fmt, seed=seed))
        prediction = predict_fast_path(config,
                                       EngineParams.from_engine(ENGINE))
        assert prediction.eligible == run.fast_path_used


class TestLivenessErrorMeansDeadlock:
    @given(geometry=geometries, seed=st.integers(0, 999))
    @settings(max_examples=10, deadline=None)
    def test_liv001_bound_actually_deadlocks(self, geometry, seed):
        fmt = fmt_of(geometry)
        op = INTER_OPS["inter_absdiff"]
        config = inter_config(op, fmt)
        floor = min_call_cycles(config)
        bound = floor // 2 if floor > 1 else 1
        report = analyze_config(config, EngineParams(max_cycles=bound))
        assert report.by_rule("LIV001"), report.format()
        with pytest.raises(EngineDeadlock):
            ENGINE.run_call(config, noise_frame(fmt, seed=seed),
                            noise_frame(fmt, seed=seed + 1),
                            max_cycles=bound)

    def test_floor_is_sound_at_the_default_params(self):
        """The provable floor never exceeds the observed completion."""
        for width, height in [(16, 16), (24, 48), (20, 40)]:
            fmt = ImageFormat(f"P{width}x{height}", width, height)
            config = inter_config(INTER_OPS["inter_absdiff"], fmt)
            run = ENGINE.run_call(config, noise_frame(fmt, seed=1),
                                  noise_frame(fmt, seed=2))
            assert min_call_cycles(config) <= run.cycles
