"""SCH001: flagging programs with zero exploitable call parallelism."""

from repro.addresslib import (AddressLib, INTER_ADD, INTRA_BOX3,
                              INTRA_GRAD, INTRA_MEDIAN3, INTRA_SOBEL_X,
                              INTRA_SOBEL_Y, trace_program)
from repro.analysis import analyze_config, analyze_program
from repro.analysis.cli import SELFTEST_CASES
from repro.core import intra_config
from repro.image import QCIF, Frame


def _chain_program():
    def body(lib: AddressLib, frame: Frame) -> Frame:
        edges = lib.intra(INTRA_GRAD, frame)
        smooth = lib.intra(INTRA_BOX3, edges)
        return lib.intra(INTRA_MEDIAN3, smooth)
    return trace_program("chain", body, Frame(QCIF))


def _diamond_program():
    def body(lib: AddressLib, frame: Frame) -> Frame:
        gx = lib.intra(INTRA_SOBEL_X, frame)
        gy = lib.intra(INTRA_SOBEL_Y, frame)
        return lib.inter(INTER_ADD, gx, gy)
    return trace_program("diamond", body, Frame(QCIF))


class TestSerialisationRule:
    def test_fires_on_straight_chain(self):
        report = analyze_program(_chain_program())
        hits = report.by_rule("SCH001")
        assert len(hits) == 1
        assert "serialises" in hits[0].message
        assert report.ok  # informational only

    def test_silent_on_parallelisable_program(self):
        report = analyze_program(_diamond_program())
        assert not report.by_rule("SCH001")

    def test_silent_on_single_call(self):
        # The driver pre-flights every call as a one-step program; a
        # lone call must not be nagged about parallelism.
        report = analyze_config(intra_config(INTRA_BOX3, QCIF))
        assert not report.by_rule("SCH001")

    def test_selftest_covers_scheduling_class(self):
        builder, rule_id = SELFTEST_CASES["scheduling"]
        assert rule_id == "SCH001"
        program, params = builder()
        report = analyze_program(program, params)
        assert report.by_rule("SCH001")
