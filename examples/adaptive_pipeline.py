"""Adaptive analysis pipeline: the paper's outlook, working together.

Section 5 sketches the next-generation platform: segment addressing on
the board (v2) and a dynamically reconfigurable pixel-processing block
that swaps operations as the video analysis changes phase.  This example
runs such a phase-switching pipeline over a short clip:

* phase A (every frame): gradient for boundary strength;
* phase B (on scene activity): median filtering before differencing;
* object extraction via the hardware segment unit, chaining calls on
  the resident frame.

It reports what the operation switches would cost on a static device
versus the dynamic region, and the segment unit's chaining benefit.

Run:  python examples/adaptive_pipeline.py
"""

from repro.addresslib import (AddressLib, INTRA_GRAD, INTRA_MEDIAN3,
                              luma_delta_criterion)
from repro.core import (ReconfigurableEngine, ReconfigurationModel,
                        intra_config, v2_utilization_report)
from repro.host import EngineBackendV2
from repro.image import QCIF, blob_frame
from repro.perf import format_table


def main() -> None:
    lib = AddressLib(EngineBackendV2())
    frames = [blob_frame(QCIF, [(40 + 12 * i, 60)], radius=14)
              for i in range(6)]

    # --- the adaptive schedule: grad, grad, median, grad, ... ------------
    schedule = []
    objects = []
    for index, frame in enumerate(frames):
        op = INTRA_MEDIAN3 if index % 3 == 2 else INTRA_GRAD
        schedule.append((intra_config(op, QCIF),))
        lib.intra(op, frame)
        # Object extraction: two chained segment calls on the same frame
        # (seed + verification pass) -- the second rides the residency.
        seed = (40 + 12 * index, 60)
        first = lib.segment(frame, [seed], luma_delta_criterion(10))
        second = lib.segment(frame, [seed], luma_delta_criterion(25))
        objects.append((index, first.pixels_processed,
                        second.pixels_processed,
                        f"{lib.log.records[-1].extra['call_seconds'] * 1e3:.2f} ms"))

    print(format_table(
        ["frame", "tight object px", "loose object px",
         "resident segment call"],
        objects, title="hardware segment extraction per frame"))

    # --- what did the op switching cost? -----------------------------------
    dynamic = ReconfigurableEngine(dynamic=True).run_schedule(schedule)
    static = ReconfigurableEngine(dynamic=False).run_schedule(schedule)
    model = ReconfigurationModel()
    print()
    print(format_table(
        ["device", "op switches", "reconfig time", "share of runtime"],
        [("dynamic pixel-processing region", dynamic.reconfigurations,
          f"{dynamic.reconfig_seconds * 1e3:.1f} ms",
          f"{dynamic.reconfig_fraction * 100:.1f}%"),
         ("static device (full bitstream)", static.reconfigurations,
          f"{static.reconfig_seconds * 1e3:.1f} ms",
          f"{static.reconfig_fraction * 100:.1f}%")],
        title=f"operation switching (partial bitstream "
              f"{model.partial_bitstream_bytes // 1024} KiB, "
              f"{model.speedup:.0f}x faster per switch)"))

    # --- and does the v2 design still fit? ---------------------------------
    report = v2_utilization_report()
    print(f"\nv2 design (with segment unit): {report.totals.brams} of "
          f"{report.device.brams} BRAMs, {report.totals.slices} slices "
          f"-- the extension fits comfortably, as the paper predicted.")


if __name__ == "__main__":
    main()
