"""A tour of the coprocessor: one call under the cycle-level microscope.

Runs a single intra call through the full AddressEngine model and prints
what every Figure 2 block did: DMA strips over the PCI, transmission
units feeding the IIM, the four-stage Process Unit with its LOAD/SHIFT
reuse, the OIM, the result-bank switch and the interrupts -- plus the
Table 1 resource bill of the design that did the work.

Run:  python examples/coprocessor_tour.py
"""

from repro.addresslib import INTRA_GRAD
from repro.core import (AddressEngine, intra_config,
                        v1_utilization_report)
from repro.image import ImageFormat, noise_frame
from repro.perf import format_table


def main() -> None:
    fmt = ImageFormat("TOUR", 96, 96)
    frame = noise_frame(fmt, seed=2005)
    engine = AddressEngine()
    config = intra_config(INTRA_GRAD, fmt)

    run = engine.run_call(config, frame)
    golden = AddressEngine.run_functional(config, frame)
    assert run.frame.equals(golden)

    stats = run.plc_stats
    print(format_table(["quantity", "value"], [
        ("frame", f"{fmt.width}x{fmt.height} ({fmt.pixels} pixels, "
                  f"{fmt.strips} strips)"),
        ("operation", config.op_name),
        ("total cycles @ 66 MHz", run.cycles),
        ("wall time", f"{run.seconds * 1e3:.2f} ms"),
        ("input transfer complete at", run.input_complete_cycle),
        ("PCI words moved", run.pci.words_to_board
         + run.pci.words_to_host),
        ("PCI utilisation", f"{run.pci.utilization():.3f}"),
        ("interrupts raised", len(run.pci.interrupts)),
    ], title="call overview"))

    print()
    print(format_table(["pipeline quantity", "value"], [
        ("pixel-cycles issued / retired",
         f"{stats.issued_pixel_cycles} / {stats.retired_pixel_cycles}"),
        ("matrix LOADs (row starts)", run.matrix_loads),
        ("matrix SHIFTs (reuse steps)", run.matrix_shifts),
        ("pixels fetched into the matrix", run.matrix_pixels_fetched),
        ("fetches saved by reuse",
         9 * fmt.pixels - run.matrix_pixels_fetched),
        ("stalls: waiting for IIM data", stats.stall_iim_wait),
        ("stalls: OIM full", stats.stall_oim_full),
        ("stalls: multi-cycle op busy", stats.stall_op_busy),
        ("OIM peak occupancy (pixels)", run.oim_peak_pixels),
    ], title="Process Unit / PLC (Figures 5 and 6)"))

    print()
    txu = run.output_txu
    print(format_table(["memory quantity", "value"], [
        ("ZBT word accesses", run.zbt.word_accesses),
        ("ZBT pixel access operations (Table 2 metric)",
         run.zbt_pixel_ops),
        ("result words in Res_block_A", txu.bank_words[0]),
        ("result words in Res_block_B (after the switch)",
         txu.bank_words[1]),
    ], title="ZBT memory (Figure 3)"))

    print()
    print(v1_utilization_report().render())


if __name__ == "__main__":
    main()
