"""Mosaicing: the paper's evaluation workload, end to end.

Runs the MPEG-7-style global motion estimation over a synthetic camera
pan (a shortened 'Singapore' stand-in), composes the per-pair motion
models and blends the frames into a mosaic -- 'as a result this software
creates a Mosaic with the global motion of the scene' (section 4.3).
The mosaic and one input frame are written as PGM images.

Run:  python examples/mosaicing.py [frames]
"""

import sys

import numpy as np

from repro.gme import GmeApplication, SINGAPORE, SyntheticSequence
from repro.host import engine_platform
from repro.image import write_pgm
from repro.perf import format_table


def main(frames: int = 24) -> None:
    sequence = SyntheticSequence(SINGAPORE, frames_override=frames)
    runtime = engine_platform()      # pixel work on the AddressEngine
    app = GmeApplication(runtime, build_mosaic=True,
                         mosaic_shape=(360, 480))
    result = app.run_sequence(sequence)

    rows = []
    for index, estimate in enumerate(result.estimates[:8]):
        truth = sequence.true_pair_model(index)
        rows.append((index,
                     f"({estimate.model.tx:+.2f}, {estimate.model.ty:+.2f})",
                     f"({truth.tx:+.2f}, {truth.ty:+.2f})",
                     estimate.iterations))
    print(format_table(
        ["pair", "estimated (tx, ty)", "true (tx, ty)", "iterations"],
        rows, title=f"global motion estimates, first pairs of "
                    f"{sequence.frames} frames"))

    print(f"\nmean |translation error|: "
          f"{result.mean_translation_error:.3f} px/pair")
    print(f"AddressEngine calls: {result.intra_calls} intra, "
          f"{result.inter_calls} inter")
    print(f"platform time: {result.total_seconds:.1f} s modelled on "
          f"{runtime.platform_name}")
    print(f"mosaic coverage: {result.mosaic.coverage:.2f}")

    write_pgm("mosaic.pgm", result.mosaic.composite(background=32))
    write_pgm("frame0.pgm", sequence.frame(0).y.astype(np.float64))
    print("\nwrote mosaic.pgm (the stitched panorama) and frame0.pgm "
          "(one input frame)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 24)
