"""Quickstart: AddressLib calls on the software and coprocessor backends.

The deployment model of the paper in a dozen lines: write the algorithm
against AddressLib once, then choose where the pixel work runs -- the
host CPU or the AddressEngine -- by swapping the backend.

Run:  python examples/quickstart.py
"""

from repro.addresslib import (AddressLib, ChannelSet, INTER_ABSDIFF,
                              INTRA_BOX3, INTRA_GRAD)
from repro.host import EngineBackend
from repro.image import CIF, checkerboard_frame, gradient_frame
from repro.perf import EngineTimingModel, PENTIUM_M_1600, format_table


def main() -> None:
    frame_a = gradient_frame(CIF)
    frame_b = checkerboard_frame(CIF, cell=16)

    # --- 1. Pure software -------------------------------------------------
    software = AddressLib()
    edges = software.intra(INTRA_GRAD, frame_a)
    smooth = software.intra(INTRA_BOX3, frame_b, ChannelSet.YUV)
    difference = software.inter(INTER_ABSDIFF, frame_a, frame_b)
    sad = software.inter_reduce(INTER_ABSDIFF, frame_a, frame_b)

    print("software backend:")
    print(f"  gradient:   mean edge strength {edges.y.mean():.2f}")
    print(f"  box filter: luma variance {frame_b.y.std():.1f} -> "
          f"{smooth.y.std():.1f}")
    print(f"  difference: mean abs diff {difference.y.mean():.2f}")
    print(f"  SAD:        {sad}")
    print(f"  calls made: {software.log.intra_calls} intra, "
          f"{software.log.inter_calls} inter")

    # --- 2. Same code, coprocessor backend --------------------------------
    engine = AddressLib(EngineBackend())
    edges_hw = engine.intra(INTRA_GRAD, frame_a)
    sad_hw = engine.inter_reduce(INTER_ABSDIFF, frame_a, frame_b)
    assert edges_hw.equals(edges), "backends must agree bit-exactly"
    assert sad_hw == sad

    # --- 3. What did each platform pay? ------------------------------------
    # Three cost views of the same CIF gradient call: the tight
    # AddressLib C library, the MPEG-7 XM style code the paper's Table 3
    # baseline actually ran, and the coprocessor.
    from repro.gme import xm_cost_model
    from repro.addresslib import INTRA_GRAD as GRAD_OP
    timing = EngineTimingModel()
    tight = PENTIUM_M_1600.seconds(
        software.log.records[0].profile)
    xm = PENTIUM_M_1600.seconds(
        xm_cost_model().intra_profile(GRAD_OP, CIF))
    hw = engine.log.records[0].extra["call_seconds"]
    rows = [
        ("AddressLib C library", "Pentium M 1.6 GHz",
         f"{tight * 1e3:.2f} ms"),
        ("MPEG-7 XM accessors (Table 3 baseline)", "Pentium M 1.6 GHz",
         f"{xm * 1e3:.2f} ms"),
        ("AddressEngine", "66 MHz PCI coprocessor",
         f"{hw * 1e3:.2f} ms"),
    ]
    print()
    print(format_table(["implementation", "platform", "time"], rows,
                       title="one intra gradient call on CIF"))
    print(f"\nengine vs XM baseline: {xm / hw:.1f}x faster "
          f"(Table 3's regime); both backends produced identical "
          f"images -- only the backend changed.")


if __name__ == "__main__":
    main()
