"""Video surveillance: motion detection plus object segmentation.

The paper's motivating application class (section 1: 'video surveillance
and driver assistance').  A static camera watches a scene; an object
moves through it.  The pipeline is pure AddressLib:

1. **inter** absolute difference between the current frame and the
   background -- the difference picture;
2. **intra** box filter + threshold -- a clean motion mask in Aux;
3. **segment** addressing seeded inside the motion region -- the moving
   object's exact shape, grown in geodesic order;
4. **segment-indexed** statistics -- area, centroid box, mean intensity
   per object, accumulated in the side table.

Run:  python examples/surveillance.py
"""

import numpy as np

from repro.addresslib import (AddressLib, INTER_ABSDIFF, INTRA_BOX3,
                              luma_band_criterion, threshold_op)
from repro.host import EngineBackend
from repro.image import QCIF, blob_frame, textured_panorama, frame_from_luma
from repro.perf import format_table


def scene_with_object(position):
    """The watched scene with a bright object at ``position``."""
    background = textured_panorama(QCIF.width, QCIF.height, seed=42) * 0.4
    frame = frame_from_luma(QCIF, background)
    if position is not None:
        blob = blob_frame(QCIF, [position], radius=9, inside=230,
                          outside=0)
        frame.y[:] = np.maximum(frame.y, blob.y)
    return frame


def main() -> None:
    lib = AddressLib(EngineBackend())   # inter/intra offloaded; segment
    # addressing falls back to software (the v1 hardware limitation).
    background = scene_with_object(None)

    detections = []
    for step, position in enumerate([(40, 50), (70, 58), (100, 66)]):
        frame = scene_with_object(position)

        # 1. difference picture against the background (inter).
        difference = lib.inter(INTER_ABSDIFF, frame, background)
        # 2. denoise + binarise (intra).
        smooth = lib.intra(INTRA_BOX3, difference)
        mask = lib.intra(threshold_op(60), smooth)

        # 3. seed a segment at the strongest response and grow it over
        #    the bright object in the *original* frame.
        ys, xs = np.nonzero(mask.y)
        seed = (int(xs[len(xs) // 2]), int(ys[len(ys) // 2]))
        result = lib.segment(frame, [seed],
                             luma_band_criterion(230, 60))

        # 4. per-object statistics from the indexed side table.
        stats = result.statistics
        box = stats.bounding_box(0)
        detections.append((step, seed, stats.area(0),
                           f"{stats.mean_luma(0):.0f}",
                           f"({box[0]},{box[1]})-({box[2]},{box[3]})"))

    print(format_table(
        ["frame", "seed", "object area", "mean luma", "bounding box"],
        detections, title="surveillance detections (moving object)"))

    log = lib.log
    print(f"\nAddressLib calls: {log.intra_calls} intra "
          f"(engine), {log.inter_calls} inter (engine), "
          f"{log.total_calls - log.intra_calls - log.inter_calls} "
          f"segment/indexed (software fallback)")

    # The object should drift rightwards across the three frames.
    xs = [d[1][0] for d in detections]
    assert xs == sorted(xs)
    print("object track is monotone rightward -- detection consistent "
          "with the scripted motion")


if __name__ == "__main__":
    main()
