"""Legacy setup shim: lets ``pip install -e .`` work in offline
environments where the ``wheel`` package (needed for PEP 660 editable
installs) is unavailable.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
