"""Fail if first-party code uses the deprecated pre-pool signatures.

PR 5 moved every piece of serving metadata into
:class:`repro.api.SubmitOptions`; the old keyword/positional spellings
still *work* (they warn with ``DeprecationWarning`` for third-party
callers) but first-party code must not regrow them.  This script walks
``src/`` and ``benchmarks/`` with :mod:`ast` and flags:

* R1 -- ``<obj>.run_batch(calls, <more positionals>)``: the legacy
  positional metadata signature (the modern call passes ``options=``).
* R2 -- ``<obj>.submit(...)`` / ``<obj>.run_batch(...)`` with any of
  the deprecated keywords ``priority=``, ``deadline_seconds=``,
  ``max_retries=``, ``arrival_seconds=``.
* R3 -- ``<obj>.submit(...)`` with more than three positional
  arguments (the widest modern form is the driver's
  ``submit(config, frame, options)``).

Run from the repo root (CI does)::

    python scripts/lint_no_deprecated.py
"""
from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "benchmarks")
DEPRECATED_KEYWORDS = frozenset(
    {"priority", "deadline_seconds", "max_retries", "arrival_seconds"})

Violation = Tuple[Path, int, str, str]


def _python_files() -> Iterator[Path]:
    for name in SCAN_DIRS:
        base = ROOT / name
        if not base.is_dir():
            continue
        yield from sorted(base.rglob("*.py"))


def _check_call(node: ast.Call, path: Path,
                violations: List[Violation]) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    method = func.attr
    if method not in ("submit", "run_batch"):
        return
    positionals = len(node.args)
    if method == "run_batch" and positionals >= 2:
        violations.append(
            (path, node.lineno, "R1",
             f"run_batch called with {positionals} positional "
             f"arguments; pass options=SubmitOptions(...)"))
    bad_kw = sorted(kw.arg for kw in node.keywords
                    if kw.arg in DEPRECATED_KEYWORDS)
    if bad_kw:
        violations.append(
            (path, node.lineno, "R2",
             f"{method} called with deprecated keyword(s) "
             f"{', '.join(bad_kw)}; fold them into "
             f"options=SubmitOptions(...)"))
    if method == "submit" and positionals > 3:
        violations.append(
            (path, node.lineno, "R3",
             f"submit called with {positionals} positional arguments; "
             f"the widest modern form is submit(config, frame, "
             f"options)"))


def main() -> int:
    violations: List[Violation] = []
    checked = 0
    for path in _python_files():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError as exc:
            violations.append((path, exc.lineno or 0, "R0",
                               f"file does not parse: {exc.msg}"))
            continue
        checked += 1
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                _check_call(node, path, violations)
    for path, lineno, rule, message in violations:
        rel = path.relative_to(ROOT)
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if violations:
        print(f"lint_no_deprecated: {len(violations)} violation(s) in "
              f"{checked} file(s)")
        return 1
    print(f"lint_no_deprecated: OK ({checked} files, no deprecated "
          f"submission signatures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
