"""Fail if first-party code uses the deprecated pre-pool signatures.

PR 5 moved every piece of serving metadata into
:class:`repro.api.SubmitOptions`; the old keyword/positional spellings
still *work* (they warn with ``DeprecationWarning`` for third-party
callers) but first-party code must not regrow them.  This script walks
``src/`` and ``benchmarks/`` with :mod:`ast` and flags:

* R1 -- ``<obj>.run_batch(calls, <more positionals>)``: the legacy
  positional metadata signature (the modern call passes ``options=``).
* R2 -- ``<obj>.submit(...)`` / ``<obj>.run_batch(...)`` with any of
  the deprecated keywords ``priority=``, ``deadline_seconds=``,
  ``max_retries=``, ``arrival_seconds=``.
* R3 -- ``<obj>.submit(...)`` with more than three positional
  arguments (the widest modern form is the driver's
  ``submit(config, frame, options)``).
* R4 -- a hand-rolled closed-loop replay pump: ``<obj>.run_until(...)``
  and ``<obj>.submit(...)`` on the *same* receiver inside one loop
  body.  PR 9 moved trace replay into :mod:`repro.load`; the one
  blessed pump is ``repro.load.runner.replay_serial`` (allowlisted
  below) and everything else should call it (or the asyncio facade)
  instead of re-growing a private loop.
* R5 -- a legacy loose-kwarg service constructor:
  ``EngineService(queue_depth=..., max_batch=...)`` or
  ``EngineService(policy=AdmissionPolicy(...))`` (likewise
  ``AdmissionController``).  The tenancy redesign put every serving
  knob in one ``repro.api.ServicePolicy``; first-party ``src/`` and
  ``benchmarks/`` code must pass ``policy=ServicePolicy(...)``.
  Applies to ``src/`` and ``benchmarks/`` only -- the policy shims
  themselves (and tests exercising them) are exempt.

Run from the repo root (CI does)::

    python scripts/lint_no_deprecated.py
"""
from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "benchmarks", "scripts")
DEPRECATED_KEYWORDS = frozenset(
    {"priority", "deadline_seconds", "max_retries", "arrival_seconds"})
#: Files allowed to hand-roll the run_until+submit pump (rule R4).
R4_ALLOWLIST = frozenset({Path("src/repro/load/runner.py")})
#: Constructors rule R5 holds to the policy-object form.
R5_CONSTRUCTORS = frozenset({"EngineService", "AdmissionController"})
#: Keywords that mark a legacy loose-kwarg service constructor.
R5_LOOSE_KEYWORDS = frozenset({"queue_depth", "max_batch", "max_depth"})
#: Directories rule R5 scans (scripts/ may demo the legacy shims).
R5_DIRS = ("src", "benchmarks")

Violation = Tuple[Path, int, str, str]


def _python_files() -> Iterator[Path]:
    for name in SCAN_DIRS:
        base = ROOT / name
        if not base.is_dir():
            continue
        yield from sorted(base.rglob("*.py"))


def _check_call(node: ast.Call, path: Path,
                violations: List[Violation]) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    method = func.attr
    if method not in ("submit", "run_batch"):
        return
    positionals = len(node.args)
    if method == "run_batch" and positionals >= 2:
        violations.append(
            (path, node.lineno, "R1",
             f"run_batch called with {positionals} positional "
             f"arguments; pass options=SubmitOptions(...)"))
    bad_kw = sorted(kw.arg for kw in node.keywords
                    if kw.arg in DEPRECATED_KEYWORDS)
    if bad_kw:
        violations.append(
            (path, node.lineno, "R2",
             f"{method} called with deprecated keyword(s) "
             f"{', '.join(bad_kw)}; fold them into "
             f"options=SubmitOptions(...)"))
    if method == "submit" and positionals > 3:
        violations.append(
            (path, node.lineno, "R3",
             f"submit called with {positionals} positional arguments; "
             f"the widest modern form is submit(config, frame, "
             f"options)"))


def _check_constructor(node: ast.Call, path: Path,
                       violations: List[Violation]) -> None:
    """Rule R5: legacy loose-kwarg EngineService/AdmissionController."""
    func = node.func
    if isinstance(func, ast.Attribute):
        name = func.attr
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return
    if name not in R5_CONSTRUCTORS:
        return
    loose = sorted(kw.arg for kw in node.keywords
                   if kw.arg in R5_LOOSE_KEYWORDS)
    if loose:
        violations.append(
            (path, node.lineno, "R5",
             f"{name} called with legacy keyword(s) "
             f"{', '.join(loose)}; fold them into "
             f"policy=ServicePolicy(...)"))
    for kw in node.keywords:
        if kw.arg != "policy":
            continue
        value = kw.value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, (ast.Name, ast.Attribute))):
            target = (value.func.id if isinstance(value.func, ast.Name)
                      else value.func.attr)
            if target == "AdmissionPolicy":
                violations.append(
                    (path, node.lineno, "R5",
                     f"{name}(policy=AdmissionPolicy(...)) is the "
                     f"legacy shape; pass policy=ServicePolicy("
                     f"admission=AdmissionPolicy(...))"))


def _receiver_key(node: ast.expr) -> Optional[str]:
    """A stable dotted key for a method call's receiver, or ``None``
    for receivers too dynamic to compare (calls, subscripts...)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _receiver_key(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _check_loop_pump(loop: ast.AST, path: Path,
                     violations: List[Violation]) -> None:
    """Rule R4: run_until + submit on one receiver in one loop body."""
    run_until_on = set()
    submit_at = []
    for node in ast.walk(loop):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        receiver = _receiver_key(node.func.value)
        if receiver is None:
            continue
        if node.func.attr == "run_until":
            run_until_on.add(receiver)
        elif node.func.attr == "submit":
            submit_at.append((receiver, node.lineno))
    for receiver, lineno in submit_at:
        if receiver in run_until_on:
            violations.append(
                (path, lineno, "R4",
                 f"hand-rolled replay pump: {receiver}.run_until and "
                 f"{receiver}.submit in one loop body; use "
                 f"repro.load.replay_serial / replay_async"))


def main() -> int:
    violations: List[Violation] = []
    checked = 0
    for path in _python_files():
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"),
                             filename=str(path))
        except SyntaxError as exc:
            violations.append((path, exc.lineno or 0, "R0",
                               f"file does not parse: {exc.msg}"))
            continue
        checked += 1
        rel = path.relative_to(ROOT)
        r4_exempt = rel in R4_ALLOWLIST
        r5_scanned = rel.parts[0] in R5_DIRS
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                _check_call(node, path, violations)
                if r5_scanned:
                    _check_constructor(node, path, violations)
            elif (not r4_exempt
                  and isinstance(node, (ast.For, ast.AsyncFor,
                                        ast.While))):
                _check_loop_pump(node, path, violations)
    # Nested loops are walked once per enclosing loop: dedupe.
    violations = list(dict.fromkeys(violations))
    for path, lineno, rule, message in violations:
        rel = path.relative_to(ROOT)
        print(f"{rel}:{lineno}: [{rule}] {message}")
    if violations:
        print(f"lint_no_deprecated: {len(violations)} violation(s) in "
              f"{checked} file(s)")
        return 1
    print(f"lint_no_deprecated: OK ({checked} files, no deprecated "
          f"submission signatures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
