"""Ad-hoc fast-path vs per-cycle equivalence sweep (development aid).

Besides cycle-exact state equivalence, every case also checks that the
static analyzer's fast-path prediction
(:func:`repro.analysis.predict_fast_path`) agrees with the dispatch
decision the engine actually took -- one source of truth for the
eligibility regime, enforced here and in the integration suite.
"""
import sys
import time

from repro.addresslib import INTER_OPS, INTRA_OPS
from repro.analysis import EngineParams, predict_fast_path
from repro.core import AddressEngine, inter_config, intra_config
from repro.image import ImageFormat, noise_frame

FAST = AddressEngine(fast_path=True)
SLOW = AddressEngine(fast_path=False)
FAST_PARAMS = EngineParams.from_engine(FAST)


def snap(run):
    s = run.plc_stats
    d = {
        "cycles": run.cycles,
        "completion": run.completion_cycle,
        "input_complete": run.input_complete_cycle,
        "plc": (s.cycles, s.active_cycles, s.issued_pixel_cycles,
                s.retired_pixel_cycles, s.stall_iim_wait, s.stall_oim_full,
                s.stall_op_busy, s.stall_disabled, s.loads, s.shifts),
        "zbt": [(b.reads, b.writes) for b in run.zbt.stats],
        "zbt_misc": (run.zbt.word_accesses, run.zbt.access_cycles,
                     run.zbt.pixel_ops),
        "pci": (run.pci.busy_cycles, run.pci.stall_cycles,
                run.pci.overhead_cycles, run.pci.idle_cycles,
                run.pci.words_to_board, run.pci.words_to_host),
        "irq": [(i.cycle, i.name) for i in run.pci.interrupts],
        "txu": [(t.pixels_moved, t.stall_no_strip, t.stall_iim_full,
                 t.stall_bank_busy) for t in run.input_txus],
        "oim_peak": run.oim_peak_pixels,
        "matrix": (run.matrix_loads, run.matrix_shifts,
                   run.matrix_pixels_fetched),
        "scalar": run.scalar,
    }
    if run.output_txu is not None:
        o = run.output_txu
        d["out"] = (o.pixels_written, o.words_written, tuple(o.bank_words),
                    o.stall_oim_empty, o.stall_bank_busy)
    return d


def compare(label, config, *frames, resident=None):
    t0 = time.time()
    slow = SLOW.run_call(config, *frames, resident=resident)
    t1 = time.time()
    fast = FAST.run_call(config, *frames, resident=resident)
    t2 = time.time()
    a, b = snap(slow), snap(fast)
    ok = True
    for key in a:
        if a[key] != b[key]:
            ok = False
            print(f"FAIL {label}: {key}\n  slow={a[key]}\n  fast={b[key]}")
    if slow.frame is not None and not slow.frame.equals(fast.frame):
        ok = False
        print(f"FAIL {label}: frame mismatch")
    prediction = predict_fast_path(config, FAST_PARAMS)
    if prediction.eligible != fast.fast_path_used:
        ok = False
        print(f"FAIL {label}: analyzer predicted "
              f"eligible={prediction.eligible} "
              f"(reasons={prediction.reasons}) but engine used "
              f"fast_path={fast.fast_path_used}")
    status = "ok " if ok else "BAD"
    print(f"{status} {label}: cycles={slow.cycles} fast_used="
          f"{fast.fast_path_used} slow={t1-t0:.2f}s fast={t2-t1:.2f}s "
          f"speedup={(t1-t0)/max(t2-t1,1e-9):.1f}x")
    return ok


def main():
    ok = True
    fmts = [ImageFormat("P24x48", 24, 48), ImageFormat("P20x40", 20, 40),
            ImageFormat("P24x24", 24, 24), ImageFormat("P16x33", 16, 33)]
    for fmt in fmts:
        frame = noise_frame(fmt, seed=1)
        frame_b = noise_frame(fmt, seed=2)
        for name, op in sorted(INTRA_OPS.items()):
            ok &= compare(f"intra:{name}:{fmt.name}",
                          intra_config(op, fmt), frame)
        for name, op in sorted(INTER_OPS.items()):
            ok &= compare(f"inter:{name}:{fmt.name}",
                          inter_config(op, fmt), frame, frame_b)
        absdiff = INTER_OPS["inter_absdiff"]
        ok &= compare(f"reduce:sad:{fmt.name}",
                      inter_config(absdiff, fmt, reduce_to_scalar=True),
                      frame, frame_b)
        ok &= compare(f"special:absdiff:{fmt.name}",
                      inter_config(absdiff, fmt, requires_full_frames=True),
                      frame, frame_b)
        ok &= compare(f"special-reduce:sad:{fmt.name}",
                      inter_config(absdiff, fmt, reduce_to_scalar=True,
                                   requires_full_frames=True),
                      frame, frame_b)
        ok &= compare(f"resident:sad:{fmt.name}",
                      inter_config(absdiff, fmt, reduce_to_scalar=True),
                      frame, frame_b, resident=[True, True])
        ok &= compare(f"resident-one:sad:{fmt.name}",
                      inter_config(absdiff, fmt, reduce_to_scalar=True),
                      frame, frame_b, resident=[False, True])
        ok &= compare(f"resident:copy-intra:{fmt.name}",
                      intra_config(INTRA_OPS["intra_copy"], fmt), frame,
                      resident=[True])
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
