"""Drive the AddressEngine service front end with an open-loop load.

Synthesizes (or loads) a seeded multi-tenant arrival trace via
:mod:`repro.load` and replays it against an
:class:`~repro.api.EngineService` -- serially, or through the asyncio
facade (``--async``) with producers suspending under backpressure --
then prints the latency/goodput books.  Everything is measured on the
modeled clock: two runs with the same arguments print the same table
on any machine.

    PYTHONPATH=src python scripts/serve_demo.py
    PYTHONPATH=src python scripts/serve_demo.py --load 1.5 --seed 7
    PYTHONPATH=src python scripts/serve_demo.py --engines 4 --pool --async
    PYTHONPATH=src python scripts/serve_demo.py --trace mytrace.json
    PYTHONPATH=src python scripts/serve_demo.py --save-trace mytrace.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.addresslib import AddressLib
from repro.api import (AdmissionPolicy, EnginePool, EngineService,
                       ServicePolicy)
from repro.host import EngineBackend
from repro.image import ImageFormat
from repro.load import (ArrivalTrace, CallFactory, TenantSpec, TraceSpec,
                        replay_async, replay_serial)
from repro.perf import format_table
from repro.service import Priority

QCIF = ImageFormat("QCIF", 176, 144)


def _tenants(args: argparse.Namespace) -> tuple:
    deadline = (args.deadline_ms * 1e-3
                if args.deadline_ms is not None else None)
    return (
        TenantSpec("viewfinder", weight=1.0,
                   priority=Priority.INTERACTIVE,
                   deadline_seconds=deadline,
                   max_retries=args.retries),
        TenantSpec("pipeline", weight=2.0, priority=Priority.STANDARD,
                   deadline_seconds=deadline,
                   max_retries=args.retries),
        TenantSpec("reprocess", weight=1.0, priority=Priority.BULK,
                   deadline_seconds=deadline,
                   max_retries=args.retries, burst_factor=4.0),
    )


def _build_service(args: argparse.Namespace) -> EngineService:
    policy = ServicePolicy(
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        admission=AdmissionPolicy(
            deadline_budget_seconds=args.budget_ms * 1e-3))
    if args.pool:
        return EngineService(
            pool=EnginePool.of_engines(args.engines), policy=policy)
    lib = AddressLib(EngineBackend()) if args.engine_backend else None
    return EngineService(
        lib=lib, virtual_engines=args.engines, policy=policy)


def _build_trace(args: argparse.Namespace) -> ArrivalTrace:
    """Synthesize the demo trace at ``--load`` x modeled capacity."""
    probe_spec = TraceSpec(
        requests=32, rate_per_s=1.0, tenants=_tenants(args),
        seed=args.seed, width=QCIF.width, height=QCIF.height,
        frame_pool=32, inter_fraction=0.25,
        intra_ops=("intra_grad", "intra_box3"))
    probe = EngineService()
    factory = CallFactory(ArrivalTrace.synthesize(probe_spec))
    mean_cost = sum(
        probe.admission.price(factory.call(entry))[1]
        for entry in factory.trace.entries) / len(factory.trace)
    rate = args.load * args.engines / mean_cost
    spec = TraceSpec(
        requests=args.requests, rate_per_s=rate,
        tenants=_tenants(args), seed=args.seed, width=QCIF.width,
        height=QCIF.height, frame_pool=32, inter_fraction=0.25,
        intra_ops=("intra_grad", "intra_box3"))
    return ArrivalTrace.synthesize(spec)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop load generator for the EngineService "
                    "front end (modeled clock: deterministic).")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests to synthesize (default 200; "
                             "ignored with --trace)")
    parser.add_argument("--load", type=float, default=0.9,
                        help="offered load as a fraction of modeled "
                             "capacity (default 0.9; >1 overloads)")
    parser.add_argument("--engines", type=int, default=1,
                        help="modeled virtual engines (default 1)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batch bound per wave (default 8)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="bounded queue depth (default 64)")
    parser.add_argument("--budget-ms", type=float, default=100.0,
                        help="admission backlog budget for INTERACTIVE "
                             "requests, in modeled ms (default 100)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline in modeled ms "
                             "(default: none)")
    parser.add_argument("--retries", type=int, default=0,
                        help="deadline-miss retries per request")
    parser.add_argument("--seed", type=int, default=0x5E2F,
                        help="arrival/workload seed")
    parser.add_argument("--engine-backend", action="store_true",
                        help="serve through the cycle-model engine "
                             "backend instead of the software library")
    parser.add_argument("--pool", action="store_true",
                        help="shard across --engines real boards via "
                             "EnginePool instead of modeling overlap "
                             "on one board")
    parser.add_argument("--async", dest="use_async",
                        action="store_true",
                        help="replay through the asyncio facade "
                             "(repro.aio): streaming completions, "
                             "producers suspend under backpressure "
                             "instead of shedding on queue depth")
    parser.add_argument("--trace", type=str, default=None,
                        help="replay this saved trace JSON instead of "
                             "synthesizing one")
    parser.add_argument("--save-trace", type=str, default=None,
                        help="write the synthesized trace to this "
                             "path (replayable via --trace)")
    args = parser.parse_args(argv)

    if args.trace is not None:
        trace = ArrivalTrace.load(args.trace)
    else:
        trace = _build_trace(args)
        if args.save_trace is not None:
            trace.save(args.save_trace)

    service = _build_service(args)
    if args.use_async:
        result = replay_async(trace, service, load_factor=args.load)
    else:
        result = replay_serial(trace, service, load_factor=args.load)
    report = result.service
    assert report is not None

    def _ms(seconds):
        return "--" if seconds is None else f"{seconds * 1e3:.2f} ms"

    shed = ", ".join(f"{reason}: {count}" for reason, count
                     in sorted(result.rejected_by_reason.items())) or "--"
    per_tenant = ", ".join(
        f"{name}: {book.completed}/{book.submitted}"
        for name, book in sorted(result.tenants.items()))
    rows = [
        ("replay mode", result.mode),
        ("offered load / rate", f"{args.load:.2f}x / "
                                f"{trace.rate_per_s:.1f}/s"),
        ("submitted / accepted", f"{report.submitted} / "
                                 f"{report.accepted}"),
        ("completed / timed out", f"{result.completed} / "
                                  f"{result.timed_out}"),
        ("rejected (by reason)", shed),
        ("completed/submitted per tenant", per_tenant),
        ("retries", report.retried),
        ("waves / coalesced", f"{report.waves} / "
                              f"{report.coalesced_requests}"),
        ("queue high-water / bound", f"{report.queue_high_water} / "
                                     f"{args.queue_depth}"),
        ("goodput", f"{result.goodput_per_s:.1f} served/s "
                    f"(ratio {result.goodput_ratio:.3f})"),
        ("modeled latency p50 / p95 / p99",
         f"{_ms(result.modeled_latency.p50)} / "
         f"{_ms(result.modeled_latency.p95)} / "
         f"{_ms(result.modeled_latency.p99)}"),
        ("overlap efficiency",
         f"{100 * report.overlap_efficiency:.1f}%"),
    ]
    if args.use_async:
        rows.append(("backpressure waits / wall s",
                     f"{result.backpressure_waits} / "
                     f"{result.backpressure_wall_seconds:.3f}"))
        rows.append(("wall latency p50 / p95",
                     f"{_ms(result.wall_latency.p50)} / "
                     f"{_ms(result.wall_latency.p95)}"))
    if report.pool is not None and args.pool:
        routed = " / ".join(str(w.calls_routed)
                            for w in report.pool.workers)
        hit_rate = report.pool.residency_hit_rate
        rows.append(("pool calls routed per board", routed))
        rows.append(("pool residency hit rate",
                     "--" if hit_rate is None
                     else f"{100 * hit_rate:.1f}%"))
    print(format_table(
        ["signal", "value"], rows,
        title=f"EngineService, {len(trace)} open-loop requests "
              f"(seed {trace.seed})"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
