"""Drive the AddressEngine service front end with an open-loop load.

A seeded Poisson arrival process offers a mixed intra/inter workload to
:class:`~repro.api.EngineService` at a chosen fraction of the modeled
engine capacity, then prints the serving books (accept/shed counts,
waves, modeled p50/p95 latency).  Everything runs on the modeled
clock: two runs with the same arguments print the same table on any
machine.

    PYTHONPATH=src python scripts/serve_demo.py
    PYTHONPATH=src python scripts/serve_demo.py --load 1.5 --seed 7
    PYTHONPATH=src python scripts/serve_demo.py --engines 4 \\
        --max-batch 8 --deadline-ms 30 --retries 1
    PYTHONPATH=src python scripts/serve_demo.py --engines 4 --pool
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence

from repro.addresslib import (AddressLib, BatchCall, INTER_ABSDIFF,
                              INTRA_BOX3, INTRA_GRAD)
from repro.api import (AdmissionPolicy, EnginePool, EngineService,
                       Priority, SubmitOptions)
from repro.host import EngineBackend
from repro.image import ImageFormat, noise_frame
from repro.perf import format_table

QCIF = ImageFormat("QCIF", 176, 144)

_OPS = (INTRA_GRAD, INTRA_BOX3)
_PRIORITIES = (Priority.INTERACTIVE, Priority.STANDARD, Priority.BULK)


def _random_call(rng: random.Random) -> BatchCall:
    frame = noise_frame(QCIF, seed=rng.randrange(32))
    if rng.random() < 0.25:
        other = noise_frame(QCIF, seed=rng.randrange(32))
        return BatchCall.inter(INTER_ABSDIFF, frame, other)
    return BatchCall.intra(rng.choice(_OPS), frame)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Open-loop load generator for the EngineService "
                    "front end (modeled clock: deterministic).")
    parser.add_argument("--requests", type=int, default=200,
                        help="requests to offer (default 200)")
    parser.add_argument("--load", type=float, default=0.9,
                        help="offered load as a fraction of modeled "
                             "capacity (default 0.9; >1 overloads)")
    parser.add_argument("--engines", type=int, default=1,
                        help="modeled virtual engines (default 1)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batch bound per wave (default 8)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="bounded queue depth (default 64)")
    parser.add_argument("--budget-ms", type=float, default=100.0,
                        help="admission backlog budget for INTERACTIVE "
                             "requests, in modeled ms (default 100)")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="per-request deadline in modeled ms "
                             "(default: none)")
    parser.add_argument("--retries", type=int, default=0,
                        help="deadline-miss retries per request")
    parser.add_argument("--seed", type=int, default=0x5E2F,
                        help="arrival/workload seed")
    parser.add_argument("--engine-backend", action="store_true",
                        help="serve through the cycle-model engine "
                             "backend instead of the software library")
    parser.add_argument("--pool", action="store_true",
                        help="shard across --engines real boards via "
                             "EnginePool instead of modeling overlap "
                             "on one board")
    args = parser.parse_args(argv)

    policy = AdmissionPolicy(
        deadline_budget_seconds=args.budget_ms * 1e-3)
    if args.pool:
        pool = EnginePool.of_engines(args.engines)
        service = EngineService(
            pool=pool, queue_depth=args.queue_depth,
            max_batch=args.max_batch, policy=policy)
    else:
        lib = AddressLib(EngineBackend()) if args.engine_backend else None
        service = EngineService(
            lib=lib, queue_depth=args.queue_depth,
            max_batch=args.max_batch, virtual_engines=args.engines,
            policy=policy)

    rng = random.Random(args.seed)
    mean_cost = sum(service.admission.price(_random_call(rng))[1]
                    for _ in range(16)) / 16
    rate = args.load * args.engines / mean_cost
    deadline = (args.deadline_ms * 1e-3
                if args.deadline_ms is not None else None)

    arrival = 0.0
    for _ in range(args.requests):
        arrival += rng.expovariate(rate)
        service.run_until(arrival)
        service.submit(_random_call(rng), SubmitOptions(
            priority=rng.choice(_PRIORITIES),
            deadline_seconds=deadline,
            max_retries=args.retries))
    report = service.drain()

    def _ms(seconds):
        return "--" if seconds is None else f"{seconds * 1e3:.2f} ms"

    shed = ", ".join(f"{reason}: {count}" for reason, count
                     in sorted(report.rejected_by_reason.items())) or "--"
    rows = [
        ("offered load / rate", f"{args.load:.2f}x / {rate:.1f}/s"),
        ("mean modeled call cost", f"{mean_cost * 1e3:.2f} ms"),
        ("submitted / accepted", f"{report.submitted} / "
                                 f"{report.accepted}"),
        ("completed / timed out", f"{report.completed} / "
                                  f"{report.timed_out}"),
        ("rejected (by reason)", shed),
        ("retries", report.retried),
        ("waves / coalesced", f"{report.waves} / "
                              f"{report.coalesced_requests}"),
        ("queue high-water / bound", f"{report.queue_high_water} / "
                                     f"{args.queue_depth}"),
        ("throughput", f"{report.completed / report.clock_seconds:.1f}"
                       f" served/s" if report.clock_seconds else "--"),
        ("modeled latency p50 / p95",
         f"{_ms(report.latency.p50)} / {_ms(report.latency.p95)}"),
        ("overlap efficiency",
         f"{100 * report.overlap_efficiency:.1f}%"),
    ]
    if report.pool is not None and args.pool:
        routed = " / ".join(str(w.calls_routed)
                            for w in report.pool.workers)
        hit_rate = report.pool.residency_hit_rate
        rows.append(("pool calls routed per board", routed))
        rows.append(("pool residency hit rate",
                     "--" if hit_rate is None
                     else f"{100 * hit_rate:.1f}%"))
    print(format_table(
        ["signal", "value"], rows,
        title=f"EngineService, {args.requests} open-loop requests "
              f"(seed {args.seed})"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
