"""Run the 208-case equivalence corpus under the transport sanitizer.

The same 0xFA57 corpus recipe the scheduler/pool/service equivalence
suites share, executed through a :class:`~repro.host.CallScheduler`
with every sanitizer domain armed, on one worker configuration.  Two
gates, both required:

* every result stays bit-exact against the serial
  :class:`~repro.addresslib.VectorExecutor` reference (the sanitizer
  must observe, never perturb);
* the sanitizer emits zero error-severity diagnostics (the healthy
  stack is clean under instrumentation).

Writes a JSON report (``--out``) with per-shard accounting and every
finding, for CI artifact upload.  Exit status is non-zero on any
mismatch or error-severity finding.

    PYTHONPATH=src python scripts/run_sanitized_corpus.py \
        --out sanitized_corpus.json
"""
from __future__ import annotations

import argparse
import json
import random
import sys
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.addresslib import (AddressLib, BatchCall, INTER_OPS, INTRA_OPS,
                              SoftwareBackend, VectorExecutor)
from repro.host import CallScheduler
from repro.image import Frame, ImageFormat, noise_frame

_INTRA = sorted(INTRA_OPS.values(), key=lambda op: op.name)
_INTER = sorted(INTER_OPS.values(), key=lambda op: op.name)

SHARDS = 8
CASES_PER_SHARD = 26
SEED = 0xFA57


def _random_batch_call(rng: random.Random) -> BatchCall:
    """One corpus case as a batch call (the 0xFA57 recipe's geometry)."""
    width = rng.randrange(4, 25)
    height = rng.choice([8, 16, 24, 32, 33, 40, 48])
    fmt = ImageFormat(f"P{width}x{height}", width, height)
    frame_a = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.5:
        return BatchCall.intra(rng.choice(_INTRA), frame_a)
    frame_b = noise_frame(fmt, seed=rng.randrange(10_000))
    if rng.random() < 0.3:
        return BatchCall.inter_reduce(rng.choice(_INTER), frame_a,
                                      frame_b)
    return BatchCall.inter(rng.choice(_INTER), frame_a, frame_b)


def _serial_reference(call: BatchCall) -> Union[Frame, int]:
    if call.reduce_to_scalar:
        return VectorExecutor.inter_reduce(call.op, call.frames[0],
                                           call.frames[1], call.channels)
    if len(call.frames) == 2:
        return VectorExecutor.inter(call.op, call.frames[0],
                                    call.frames[1], call.channels)
    return VectorExecutor.intra(call.op, call.frames[0], call.channels)


def _same(got: Union[Frame, int], want: Union[Frame, int]) -> bool:
    if isinstance(want, int):
        return bool(got == want)
    return bool(got.equals(want))  # type: ignore[union-attr]


def _finding_dict(diag: Any, shard: int) -> Dict[str, Any]:
    return {"shard": shard, "rule_id": diag.rule_id,
            "severity": diag.severity.name, "message": diag.message}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="208-case corpus under the transport sanitizer.")
    parser.add_argument("--out", default="sanitized_corpus.json",
                        metavar="PATH",
                        help="where to write the JSON report")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="scheduler worker count (default 2)")
    args = parser.parse_args(argv)

    shards: List[Dict[str, Any]] = []
    findings: List[Dict[str, Any]] = []
    mismatches = 0
    with CallScheduler(max_workers=args.workers,
                       sanitize=("all",)) as scheduler:
        for shard in range(SHARDS):
            rng = random.Random(SEED + shard)
            calls = [_random_batch_call(rng)
                     for _ in range(CASES_PER_SHARD)]
            before = len(scheduler.sanitizer_findings)
            lib = AddressLib(SoftwareBackend())
            results = lib.run_batch(calls, scheduler=scheduler)
            shard_mismatches = sum(
                0 if _same(got, _serial_reference(call)) else 1
                for call, got in zip(calls, results))
            mismatches += shard_mismatches
            new = scheduler.sanitizer_findings[before:]
            findings.extend(_finding_dict(d, shard) for d in new)
            shards.append({"shard": shard, "cases": len(calls),
                           "mismatches": shard_mismatches,
                           "findings": len(new)})
            print(f"shard {shard}: {len(calls)} cases, "
                  f"{shard_mismatches} mismatch(es), "
                  f"{len(new)} finding(s)")

    errors = [f for f in findings if f["severity"] == "ERROR"]
    payload = {
        "seed": SEED, "shards": SHARDS,
        "cases": SHARDS * CASES_PER_SHARD, "workers": args.workers,
        "sanitize": ["all"], "mismatches": mismatches,
        "error_findings": len(errors), "findings": findings,
        "per_shard": shards,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {args.out}: {payload['cases']} cases, "
          f"{mismatches} mismatch(es), {len(findings)} finding(s) "
          f"({len(errors)} error-severity)")
    if mismatches or errors:
        print("sanitized corpus: FAILED (results drifted or the "
              "sanitizer flagged errors)")
        return 1
    print("sanitized corpus: OK (bit-exact, zero error-severity "
          "findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
