"""``repro-check`` from a checkout: static-verify call programs.

Thin wrapper over :mod:`repro.analysis.cli` for environments where the
package is on ``PYTHONPATH`` but not installed (the entry point
``repro-check`` covers installed environments).

    PYTHONPATH=src python scripts/check_program.py              # all
    PYTHONPATH=src python scripts/check_program.py quickstart
    PYTHONPATH=src python scripts/check_program.py --selftest
    PYTHONPATH=src python scripts/check_program.py --list-rules
"""
import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
